//! Property tests for span nesting: however guards are opened, dropped,
//! and interleaved with instants/counters, the recorded stream must be
//! well-nested (Begin/End balance like parentheses with matching names),
//! timestamps must be strictly increasing within a stream, and the
//! Chrome exporter must emit valid JSON for it.

use mp_telemetry::{
    chrome_trace_json, span, validate_json, Event, EventKind, SinkConfig, SpanGuard,
    TelemetrySession,
};
use proptest::prelude::*;

const NAMES: [&str; 3] = ["alpha", "beta", "gamma"];

/// Interprets a small op program against a fresh session: 0 opens a span,
/// 1 closes the innermost open span, 2 records an instant, 3 records a
/// counter. Remaining guards drop (close) in LIFO order at scope exit.
fn record(ops: &[u8]) -> Vec<Event> {
    let session = TelemetrySession::with_config(SinkConfig {
        ring_capacity: 4096,
        ..SinkConfig::default()
    });
    {
        let _g = session.install("prop", 0);
        let mut open: Vec<SpanGuard> = Vec::new();
        for &op in ops {
            match op {
                0 => open.push(span("prop", NAMES[open.len() % NAMES.len()])),
                1 => {
                    open.pop();
                }
                2 => mp_telemetry::instant("prop", "tick"),
                _ => mp_telemetry::counter("depth", open.len() as f64),
            }
        }
        // Drain LIFO so the tail is well-nested too.
        while open.pop().is_some() {}
    }
    let streams = session.streams();
    assert_eq!(streams.len(), 1);
    streams[0].events.clone()
}

proptest! {
    #[test]
    fn spans_are_well_nested_and_export_cleanly(ops in proptest::collection::vec(0u8..4, 0..200)) {
        let events = record(&ops);

        // Timestamps strictly increase: every recorded event consumes a
        // cursor tick.
        for w in events.windows(2) {
            prop_assert!(w[0].t < w[1].t, "non-monotone t: {} then {}", w[0].t, w[1].t);
        }

        // Begin/End balance with matching names, instants never nest.
        let mut stack: Vec<&'static str> = Vec::new();
        for e in &events {
            match e.kind {
                EventKind::Begin => stack.push(e.name),
                EventKind::End => {
                    let opened = stack.pop();
                    prop_assert_eq!(opened, Some(e.name), "End closes the innermost Begin");
                }
                _ => {}
            }
        }
        prop_assert!(stack.is_empty(), "unclosed spans: {:?}", stack);

        // Depth never exceeds what the op program could open, and the
        // exporter accepts the stream.
        let session = TelemetrySession::new();
        drop(session.install("prop", 0));
        let json = chrome_trace_json(&{
            let mut s = session.streams();
            s[0].events = events;
            s
        });
        prop_assert!(validate_json(&json).is_ok(), "invalid JSON: {}", json);
    }

    #[test]
    fn identical_programs_record_identical_streams(ops in proptest::collection::vec(0u8..4, 0..100)) {
        prop_assert_eq!(record(&ops), record(&ops));
    }
}
