//! Histogram semantics tests: log2 bucket boundaries and exact
//! nearest-rank percentiles (the contract that lets the registry's
//! `service.latency_ns` histogram reproduce `ServiceSummary` percentiles
//! byte-for-byte).

use mp_telemetry::{bucket_index, bucket_range, HistSnapshot};

#[test]
fn bucket_boundaries_are_exact_powers_of_two() {
    // Bucket 0 holds only zero; bucket k >= 1 holds [2^(k-1), 2^k).
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 1);
    assert_eq!(bucket_index(2), 2);
    assert_eq!(bucket_index(3), 2);
    assert_eq!(bucket_index(4), 3);
    for k in 1..64usize {
        let lo = 1u64 << (k - 1);
        let hi = (1u64 << k) - 1;
        assert_eq!(bucket_index(lo), k, "low edge of bucket {k}");
        assert_eq!(bucket_index(hi), k, "high edge of bucket {k}");
        assert_eq!(bucket_range(k), (lo, hi));
    }
    assert_eq!(bucket_index(u64::MAX), 64);
    assert_eq!(bucket_range(64), (1u64 << 63, u64::MAX));
    assert_eq!(bucket_range(0), (0, 0));
}

#[test]
fn every_sample_lands_in_its_reported_bucket() {
    let mut h = HistSnapshot::new();
    let samples = [0u64, 1, 2, 3, 7, 8, 1023, 1024, u64::MAX];
    h.observe_all(&samples);
    assert_eq!(h.count(), samples.len() as u64);
    for &v in &samples {
        let k = bucket_index(v);
        let (lo, hi) = bucket_range(k);
        assert!(lo <= v && v <= hi, "{v} outside its bucket [{lo}, {hi}]");
        assert!(h.buckets()[k] > 0, "bucket {k} empty despite sample {v}");
    }
    assert_eq!(h.buckets().iter().sum::<u64>(), h.count());
}

#[test]
fn percentiles_are_exact_nearest_rank_not_interpolated() {
    let mut h = HistSnapshot::new();
    h.observe_all(&[10, 20, 30, 40]);
    // nearest-rank: rank = ceil(q*n) clamped to [1, n], value = sorted[rank-1]
    assert_eq!(h.percentile(0.50), Some(20));
    assert_eq!(h.percentile(0.51), Some(30));
    assert_eq!(h.percentile(0.75), Some(30));
    assert_eq!(h.percentile(0.99), Some(40));
    assert_eq!(h.percentile(0.999), Some(40));
    assert_eq!(h.percentile(0.0), Some(10));
    assert_eq!(h.percentile(1.0), Some(40));
    assert_eq!(HistSnapshot::new().percentile(0.5), None);
}

#[test]
fn percentiles_match_a_reference_sort_for_awkward_sizes() {
    // Duplicates, unsorted insert order, sizes that stress the ceil/clamp.
    for n in [1usize, 2, 3, 7, 99, 100, 101, 1000] {
        let mut h = HistSnapshot::new();
        let samples: Vec<u64> = (0..n).map(|i| ((i * 7919 + 13) % 257) as u64).collect();
        h.observe_all(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            assert_eq!(
                h.percentile(q),
                Some(sorted[rank - 1]),
                "n={n} q={q} disagrees with the reference nearest-rank"
            );
        }
        assert_eq!(h.min(), sorted.first().copied());
        assert_eq!(h.max(), sorted.last().copied());
    }
}

#[test]
fn absorb_merges_counts_sums_and_buckets() {
    let mut a = HistSnapshot::new();
    a.observe_all(&[1, 2, 3]);
    let mut b = HistSnapshot::new();
    b.observe_all(&[100, 200]);
    a.absorb(&b);
    assert_eq!(a.count(), 5);
    assert_eq!(a.sum(), 306);
    assert_eq!(a.percentile(0.999), Some(200));
    assert_eq!(a.buckets().iter().sum::<u64>(), 5);
}
