//! Chrome trace-event JSON export (Perfetto / `chrome://tracing`).
//!
//! Emits the JSON-object flavor (`{"traceEvents":[...]}`): each stream
//! becomes a process (`pid`), each lane within it a thread (`tid`), with
//! `process_name`/`thread_name` metadata so the UI shows meaningful row
//! labels. Timestamps are microseconds with nanosecond precision
//! (`ts = t / 1000.0`, three decimals).
//!
//! Streams are sorted by label and lanes numbered by first appearance
//! within their stream, so the output is byte-identical regardless of
//! which threads recorded which streams — this is what the 1-vs-8-thread
//! determinism test pins down.

use crate::event::{ArgValue, Args, EventKind, Lane};
use crate::sink::Stream;

/// Renders streams as a Chrome trace-event JSON string.
pub fn chrome_trace_json(streams: &[Stream]) -> String {
    let mut ordered: Vec<&Stream> = streams.iter().collect();
    ordered.sort_by_key(|s| s.label);

    let mut out = String::with_capacity(4096);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for (si, stream) in ordered.iter().enumerate() {
        let pid = si as u32 + 1;
        // Lanes in order of first appearance -> stable tids.
        let mut lanes: Vec<Lane> = Vec::new();
        for e in &stream.events {
            if !lanes.contains(&e.lane) {
                lanes.push(e.lane);
            }
        }
        emit(&mut out, &mut first, |o| {
            o.push_str(&format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\""
            ));
            escape_into(o, &format!("{}/{}", stream.label.name, stream.label.index));
            o.push_str("\"}}");
        });
        for (ti, lane) in lanes.iter().enumerate() {
            let tid = ti as u32 + 1;
            emit(&mut out, &mut first, |o| {
                o.push_str(&format!(
                    "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\""
                ));
                escape_into(o, &format!("{}/{}", lane.name, lane.index));
                o.push_str("\"}}");
            });
        }
        for e in &stream.events {
            let tid = lanes.iter().position(|l| l == &e.lane).unwrap_or(0) as u32 + 1;
            let ts = e.t as f64 / 1_000.0;
            emit(&mut out, &mut first, |o| {
                o.push_str(&format!("{{\"pid\":{pid},\"tid\":{tid},\"ts\":{ts:.3}"));
                o.push_str(",\"cat\":\"");
                escape_into(o, e.cat);
                o.push_str("\",\"name\":\"");
                escape_into(o, e.name);
                o.push('"');
                match e.kind {
                    EventKind::Begin => {
                        o.push_str(",\"ph\":\"B\"");
                        args_into(o, &e.args);
                    }
                    EventKind::End => {
                        o.push_str(",\"ph\":\"E\"");
                        args_into(o, &e.args);
                    }
                    EventKind::Instant => {
                        o.push_str(",\"ph\":\"i\",\"s\":\"t\"");
                        args_into(o, &e.args);
                    }
                    EventKind::Complete { dur } => {
                        let dur_us = dur as f64 / 1_000.0;
                        o.push_str(&format!(",\"ph\":\"X\",\"dur\":{dur_us:.3}"));
                        args_into(o, &e.args);
                    }
                    EventKind::Counter { value } => {
                        o.push_str(&format!(
                            ",\"ph\":\"C\",\"args\":{{\"value\":{}}}",
                            finite(value)
                        ));
                    }
                }
                o.push('}');
            });
        }
    }
    out.push_str("]}");
    out
}

fn emit(out: &mut String, first: &mut bool, f: impl FnOnce(&mut String)) {
    if !*first {
        out.push(',');
    }
    *first = false;
    f(out);
}

fn args_into(out: &mut String, args: &Args) {
    if args.iter().all(|a| a.is_none()) {
        return;
    }
    out.push_str(",\"args\":{");
    let mut first = true;
    for (name, value) in args.iter().flatten() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        escape_into(out, name);
        out.push_str("\":");
        match value {
            ArgValue::U64(v) => out.push_str(&v.to_string()),
            ArgValue::I64(v) => out.push_str(&v.to_string()),
            ArgValue::F64(v) => out.push_str(&finite(*v)),
            ArgValue::Str(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
        }
    }
    out.push('}');
}

/// Formats an `f64` as JSON (no NaN/Inf — those become 0).
fn finite(v: f64) -> String {
    if v.is_finite() {
        // `{}` prints integers without a dot, which is still valid JSON.
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Escapes a string for inclusion inside JSON quotes.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Validates that `s` is a single well-formed JSON value.
///
/// The workspace has no JSON dependency, so the exporter's tests (and the
/// soak bin's self-check) use this small recursive-descent validator. It
/// checks syntax only — structure, not schema.
pub fn validate_json(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos:?}")),
        None => Err("unexpected end of input".to_string()),
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // {
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos:?}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos:?}")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // [
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos:?}")),
        }
    }
}

fn literal(b: &[u8], pos: &mut usize, word: &[u8]) -> Result<(), String> {
    if b.len() >= *pos + word.len() && &b[*pos..*pos + word.len()] == word {
        *pos += word.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos:?}"))
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos:?}"));
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !b.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(format!("bad \\u escape at byte {pos:?}"));
                            }
                            *pos += 1;
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos:?}")),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte in string at {pos:?}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut digits = 0;
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
        digits += 1;
    }
    if digits == 0 {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let mut frac = 0;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
            frac += 1;
        }
        if frac == 0 {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let mut exp = 0;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
            exp += 1;
        }
        if exp == 0 {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{arg2, ArgValue, Event, Lane, NO_ARGS};
    use crate::sink::{SinkConfig, TelemetrySession};

    fn sample_streams() -> Vec<Stream> {
        let session = TelemetrySession::with_config(SinkConfig::default());
        {
            let _g = session.install("service", 0);
            crate::set_time(1_000);
            let sp = crate::span_args(
                "service",
                "serve",
                arg2("req", ArgValue::U64(7), "tier", ArgValue::Str("full")),
            );
            crate::counter("queue_depth", 3.0);
            crate::complete_at(
                Lane::new("inst", 1),
                "service",
                "busy",
                1_000,
                2_500,
                NO_ARGS,
            );
            crate::instant_args("service", "deadline_miss", NO_ARGS);
            sp.end_args(NO_ARGS);
        }
        session.streams()
    }

    #[test]
    fn export_is_valid_json_with_expected_phases() {
        let json = chrome_trace_json(&sample_streams());
        validate_json(&json).expect("exporter must emit valid JSON");
        assert!(json.starts_with("{\"traceEvents\":["));
        for phase in [
            "\"ph\":\"M\"",
            "\"ph\":\"B\"",
            "\"ph\":\"E\"",
            "\"ph\":\"C\"",
            "\"ph\":\"X\"",
            "\"ph\":\"i\"",
        ] {
            assert!(json.contains(phase), "missing {phase} in {json}");
        }
        assert!(json.contains("\"name\":\"service/0\""));
        assert!(json.contains("\"name\":\"inst/1\""));
        // 1000 ns -> 1.000 us
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":2.500"));
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn non_finite_floats_become_zero() {
        assert_eq!(finite(f64::NAN), "0");
        assert_eq!(finite(f64::INFINITY), "0");
        assert_eq!(finite(1.5), "1.5");
        assert_eq!(finite(2.0), "2");
    }

    #[test]
    fn validator_accepts_and_rejects() {
        validate_json("{\"a\":[1,2.5,-3e2,\"x\",true,null]}").unwrap();
        validate_json("  [ ]  ").unwrap();
        assert!(validate_json("{").is_err());
        assert!(validate_json("{\"a\":1,}").is_err());
        assert!(validate_json("[1 2]").is_err());
        assert!(validate_json("\"unterminated").is_err());
        assert!(validate_json("01abc").is_err());
        assert!(validate_json("{\"a\":1} extra").is_err());
    }

    #[test]
    fn empty_streams_export_cleanly() {
        let json = chrome_trace_json(&[]);
        assert_eq!(json, "{\"traceEvents\":[]}");
        validate_json(&json).unwrap();
        let empty = Stream {
            label: Lane::new("empty", 0),
            events: Vec::<Event>::new(),
            dropped: 0,
            incidents: Vec::new(),
            incidents_seen: 0,
        };
        validate_json(&chrome_trace_json(&[empty])).unwrap();
    }
}
