//! Counters, gauges, exact-percentile histograms, and the registry that
//! unifies the stack's previously ad-hoc metric structs.
//!
//! Design constraints inherited from the existing code:
//!
//! * `ServiceSummary` promises **exact nearest-rank** percentiles, so the
//!   [`Histogram`] keeps raw samples (sorted lazily) and computes
//!   percentiles with the identical formula — the log2 buckets are
//!   maintained alongside purely for rendering a shape sketch without a
//!   sort.
//! * `mp_collision::metrics` is a `static` atomic, so [`Counter::new`]
//!   is `const`.
//! * Export must be deterministic, so the [`Registry`] is a `BTreeMap`
//!   and renders in name order.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of log2 buckets: one for zero plus one per bit of `u64`.
pub const BUCKETS: usize = 65;

/// A monotone atomic counter (relaxed; sums are deterministic even when
/// increments interleave across threads).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter; `const` so it can back a `static`.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins float gauge (stored as bits in an atomic).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge; `const` so it can back a `static`.
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// The log2 bucket index of a sample: 0 for 0, else `floor(log2(v)) + 1`,
/// i.e. bucket `k >= 1` holds values in `[2^(k-1), 2^k)`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// The inclusive value range `[lo, hi]` covered by a bucket index.
pub fn bucket_range(index: usize) -> (u64, u64) {
    match index {
        0 => (0, 0),
        64 => (1u64 << 63, u64::MAX),
        k => (1u64 << (k - 1), (1u64 << k) - 1),
    }
}

/// An owned histogram snapshot: raw samples plus log2 buckets.
///
/// This is the lock-free "data" half of [`Histogram`]; the registry stores
/// these directly (it holds its own lock).
#[derive(Clone, Debug, PartialEq)]
pub struct HistSnapshot {
    samples: Vec<u64>,
    sorted: bool,
    buckets: [u64; BUCKETS],
    sum: u128,
}

impl Default for HistSnapshot {
    fn default() -> HistSnapshot {
        HistSnapshot {
            samples: Vec::new(),
            sorted: true,
            buckets: [0; BUCKETS],
            sum: 0,
        }
    }
}

impl HistSnapshot {
    /// An empty histogram.
    pub fn new() -> HistSnapshot {
        HistSnapshot::default()
    }

    /// Records one sample.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        if let Some(&last) = self.samples.last() {
            if v < last {
                self.sorted = false;
            }
        }
        self.samples.push(v);
        self.buckets[bucket_index(v)] += 1;
        self.sum += v as u128;
    }

    /// Records a batch of samples.
    pub fn observe_all(&mut self, vs: &[u64]) {
        for &v in vs {
            self.observe(v);
        }
    }

    /// Merges another histogram's samples into this one.
    pub fn absorb(&mut self, other: &HistSnapshot) {
        self.observe_all(&other.samples);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.samples.len() as u64
    }

    /// Sum of samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean sample; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.sum as f64 / self.samples.len() as f64)
        }
    }

    /// Smallest sample; `None` when empty.
    pub fn min(&self) -> Option<u64> {
        self.samples.iter().min().copied()
    }

    /// Largest sample; `None` when empty.
    pub fn max(&self) -> Option<u64> {
        self.samples.iter().max().copied()
    }

    /// Exact nearest-rank percentile, `q` in `0..=1`; `None` when empty.
    ///
    /// Identical formula to `ServiceSummary::latency_percentile_us`:
    /// `rank = clamp(ceil(q * n), 1, n)`, answer is the rank-th smallest.
    /// Free when samples were observed in sorted order; otherwise sorts a
    /// copy.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        let sorted = self.sorted_samples();
        let n = sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(sorted[rank - 1])
    }

    /// The log2 bucket counts (index via [`bucket_index`]).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// The raw samples (ordering unspecified).
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    fn sorted_samples(&self) -> Cow<'_, [u64]> {
        if self.sorted {
            Cow::Borrowed(&self.samples)
        } else {
            let mut v = self.samples.clone();
            v.sort_unstable();
            Cow::Owned(v)
        }
    }

    /// Sorts the stored samples in place so later percentile calls are
    /// allocation-free.
    pub fn sort(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// `count/mean/p50/p99/p999/max` rendered on one line.
    pub fn summary_line(&self) -> String {
        match self.mean() {
            None => "count=0".to_string(),
            Some(mean) => {
                let p50 = self.percentile(0.50).unwrap_or(0);
                let p99 = self.percentile(0.99).unwrap_or(0);
                let p999 = self.percentile(0.999).unwrap_or(0);
                let max = self.max().unwrap_or(0);
                format!(
                    "count={} mean={:.1} p50={} p99={} p999={} max={}",
                    self.count(),
                    mean,
                    p50,
                    p99,
                    p999,
                    max
                )
            }
        }
    }
}

/// A shared histogram: a [`HistSnapshot`] behind a mutex.
#[derive(Debug, Default)]
pub struct Histogram {
    inner: Mutex<HistSnapshot>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.lock().observe(v);
    }

    /// Records a batch of samples.
    pub fn observe_all(&self, vs: &[u64]) {
        self.lock().observe_all(vs);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.lock().count()
    }

    /// Mean sample; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        self.lock().mean()
    }

    /// Exact nearest-rank percentile (see [`HistSnapshot::percentile`]).
    pub fn percentile(&self, q: f64) -> Option<u64> {
        self.lock().percentile(q)
    }

    /// An owned copy of the current state.
    pub fn snapshot(&self) -> HistSnapshot {
        self.lock().clone()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HistSnapshot> {
        self.inner.lock().expect("histogram poisoned")
    }
}

impl Clone for Histogram {
    fn clone(&self) -> Histogram {
        Histogram {
            inner: Mutex::new(self.snapshot()),
        }
    }
}

/// One named metric in a [`Registry`].
#[derive(Clone, Debug, PartialEq)]
pub enum Metric {
    /// A monotone count.
    Counter(u64),
    /// A point-in-time value.
    Gauge(f64),
    /// A distribution (boxed: it is much larger than the other variants).
    Histogram(Box<HistSnapshot>),
}

/// A name-ordered collection of metrics with text/CSV export.
///
/// The registry is the unification point for the stack's metric structs:
/// `CdStats`, `OpCounter`, `ResilienceCounters`, and `ServiceSummary` all
/// implement an `export_into(prefix, &Registry)` that lands here, so one
/// dump shows the whole stack in a single name-sorted table.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `delta` to a counter, creating it at zero first.
    pub fn add_counter(&self, name: &str, delta: u64) {
        let mut m = self.lock();
        match m.entry(name.to_string()).or_insert(Metric::Counter(0)) {
            Metric::Counter(v) => *v += delta,
            other => *other = Metric::Counter(delta),
        }
    }

    /// Sets a counter to an absolute value.
    pub fn set_counter(&self, name: &str, value: u64) {
        self.lock().insert(name.to_string(), Metric::Counter(value));
    }

    /// Sets a gauge.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.lock().insert(name.to_string(), Metric::Gauge(value));
    }

    /// Records one histogram sample, creating the histogram if needed.
    pub fn observe(&self, name: &str, v: u64) {
        let mut m = self.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Box::default()))
        {
            Metric::Histogram(h) => h.observe(v),
            other => {
                let mut h = HistSnapshot::new();
                h.observe(v);
                *other = Metric::Histogram(Box::new(h));
            }
        }
    }

    /// Merges a whole histogram under `name`.
    pub fn observe_hist(&self, name: &str, hist: &HistSnapshot) {
        let mut m = self.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Box::default()))
        {
            Metric::Histogram(h) => h.absorb(hist),
            other => *other = Metric::Histogram(Box::new(hist.clone())),
        }
    }

    /// The current value of a counter, if present.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.lock().get(name) {
            Some(Metric::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The current value of a gauge, if present.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        match self.lock().get(name) {
            Some(Metric::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// A copy of a histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<HistSnapshot> {
        match self.lock().get(name) {
            Some(Metric::Histogram(h)) => Some(h.as_ref().clone()),
            _ => None,
        }
    }

    /// Number of metrics registered.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Renders `name kind value` lines in name order.
    pub fn render_text(&self) -> String {
        let snapshot = self.lock().clone();
        let mut out = String::new();
        for (name, metric) in snapshot {
            match metric {
                Metric::Counter(v) => out.push_str(&format!("{name} counter {v}\n")),
                Metric::Gauge(v) => out.push_str(&format!("{name} gauge {v}\n")),
                Metric::Histogram(h) => {
                    out.push_str(&format!("{name} histogram {}\n", h.summary_line()));
                }
            }
        }
        out
    }

    /// Renders a CSV table (`name,kind,count,value,p50,p99,p999`).
    pub fn to_csv(&self) -> String {
        let snapshot = self.lock().clone();
        let mut out = String::from("name,kind,count,value,p50,p99,p999\n");
        for (name, metric) in snapshot {
            match metric {
                Metric::Counter(v) => out.push_str(&format!("{name},counter,,{v},,,\n")),
                Metric::Gauge(v) => out.push_str(&format!("{name},gauge,,{v},,,\n")),
                Metric::Histogram(h) => {
                    let mean = h.mean().unwrap_or(0.0);
                    let p50 = h.percentile(0.50).unwrap_or(0);
                    let p99 = h.percentile(0.99).unwrap_or(0);
                    let p999 = h.percentile(0.999).unwrap_or(0);
                    out.push_str(&format!(
                        "{name},histogram,{},{mean},{p50},{p99},{p999}\n",
                        h.count()
                    ));
                }
            }
        }
        out
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        self.inner.lock().expect("telemetry registry poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        static C: Counter = Counter::new();
        C.add(2);
        C.inc();
        assert!(C.get() >= 3);
        let g = Gauge::new();
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
    }

    #[test]
    fn percentile_matches_service_summary_formula() {
        let mut h = HistSnapshot::new();
        h.observe_all(&[4_000, 1_000, 3_000, 2_000]);
        // Same fixtures as ServiceSummary::percentiles_are_exact_nearest_rank.
        assert_eq!(h.percentile(0.50), Some(2_000));
        assert_eq!(h.percentile(0.99), Some(4_000));
        assert_eq!(h.percentile(0.001), Some(1_000));
        assert_eq!(HistSnapshot::new().percentile(0.5), None);
    }

    #[test]
    fn registry_renders_in_name_order() {
        let r = Registry::new();
        r.set_gauge("z.util", 0.5);
        r.add_counter("a.count", 3);
        r.add_counter("a.count", 2);
        r.observe("m.lat", 10);
        r.observe("m.lat", 20);
        let text = r.render_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "a.count counter 5");
        assert!(lines[1].starts_with("m.lat histogram count=2"));
        assert!(lines[2].starts_with("z.util gauge 0.5"));
        assert_eq!(r.counter_value("a.count"), Some(5));
        assert_eq!(r.gauge_value("z.util"), Some(0.5));
        assert_eq!(r.histogram("m.lat").unwrap().count(), 2);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let r = Registry::new();
        r.add_counter("c", 1);
        r.observe("h", 5);
        let csv = r.to_csv();
        assert!(csv.starts_with("name,kind,count,value,p50,p99,p999\n"));
        assert!(csv.contains("c,counter,,1,,,\n"));
        assert!(csv.contains("h,histogram,1,5,5,5,5\n"));
    }
}
