//! Deterministic structured tracing and metrics for the MPAccel stack.
//!
//! The paper's evaluation (§7) is all per-stage visibility — cascade exit
//! rates, CDU occupancy, SAS scheduling, service latency tails — and
//! before this crate that visibility was scattered across three ad-hoc
//! metric structs with no way to follow one request through
//! plan → CD query → octree traversal → cascade stage. `mp-telemetry`
//! provides the common substrate:
//!
//! * **Spans and events** ([`event`], [`sink`]): per-thread ring-buffer
//!   streams of `Copy` events stamped with a monotone virtual-time cursor.
//!   Hierarchical spans (`plan → phase → cd_query`), instants, counter
//!   tracks, and explicit-duration lane spans for parallel hardware
//!   resources. Recording is a thread-local write, no locks; when no
//!   stream is installed every call is an early-out `Option` check, and
//!   the hot collision/SAS kernels additionally hide their call sites
//!   behind a `telemetry` cargo feature in their own crates so the
//!   default build carries zero extra instructions there.
//! * **Metrics** ([`metrics`]): `Counter`/`Gauge`/`Histogram` plus a
//!   name-ordered [`Registry`]. Histograms keep raw samples for *exact*
//!   nearest-rank percentiles (the `ServiceSummary` contract) alongside
//!   log2 buckets for shape sketches.
//! * **Exporters** ([`chrome`], [`flight`]): Chrome trace-event JSON
//!   loadable in Perfetto / `chrome://tracing`, a plain-text/CSV metrics
//!   dump, and a flight-recorder post-mortem report.
//!
//! Determinism contract: all recorded quantities derive from virtual time
//! and seeded state; streams are labelled and export sorts by label, so
//! the trace bytes are identical for any worker-thread count. The bench
//! suite pins this with a 1-vs-8-thread byte-identity test.
//!
//! # Examples
//!
//! ```
//! use mp_telemetry::{self as telemetry, ArgValue, TelemetrySession};
//!
//! let session = TelemetrySession::new();
//! {
//!     let _stream = session.install("demo", 0);
//!     telemetry::set_time(1_000); // virtual ns
//!     let span = telemetry::span("planner", "plan");
//!     telemetry::counter("queue_depth", 2.0);
//!     span.end_args(mp_telemetry::arg1("solved", ArgValue::Str("yes")));
//! }
//! let json = mp_telemetry::chrome_trace_json(&session.streams());
//! assert!(json.contains("\"name\":\"plan\""));
//! mp_telemetry::validate_json(&json).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod event;
pub mod flight;
pub mod metrics;
pub mod sink;

pub use chrome::{chrome_trace_json, validate_json};
pub use event::{arg1, arg2, Arg, ArgValue, Args, Event, EventKind, Lane, TimeNs, NO_ARGS};
pub use flight::{flight_report, incident_kind, Incident, IncidentKind};
pub use metrics::{
    bucket_index, bucket_range, Counter, Gauge, HistSnapshot, Histogram, Metric, Registry,
};
pub use sink::{
    active, complete_at, counter, counter_on, incident, instant, instant_args, sampled_span,
    set_time, span, span_args, SinkConfig, SinkGuard, SpanGuard, Stream, TelemetrySession,
};
