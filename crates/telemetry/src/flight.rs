//! Flight recorder: bounded snapshots of recent events captured at the
//! moment something went wrong, plus a plain-text post-mortem renderer.
//!
//! The service loop and accelerator models call [`crate::incident`] when a
//! deadline miss, shed, fault-retry exhaustion, or quarantine fires; the
//! sink clones the tail of its ring into an [`Incident`]. After the run,
//! [`flight_report`] renders every captured incident as a readable
//! post-mortem: the reason line followed by the last events leading up to
//! it, newest last.

use crate::event::{ArgValue, Event, EventKind, TimeNs};
use crate::sink::Stream;

/// One captured incident: the reason and the events leading up to it.
#[derive(Clone, Debug, PartialEq)]
pub struct Incident {
    /// Stream-cursor time when the incident fired.
    pub t: TimeNs,
    /// Why the snapshot was taken (e.g. `deadline_miss req=42 late_us=310`).
    pub reason: String,
    /// The last `flight_capacity` events before the incident.
    pub events: Vec<Event>,
}

/// Renders all incidents across streams as a plain-text report.
///
/// Streams are sorted by label (same canonical order as the trace
/// exporter), so the report is deterministic across thread counts.
pub fn flight_report(streams: &[Stream]) -> String {
    let mut ordered: Vec<&Stream> = streams.iter().collect();
    ordered.sort_by_key(|s| s.label);

    let total: u64 = ordered.iter().map(|s| s.incidents_seen).sum();
    let kept: usize = ordered.iter().map(|s| s.incidents.len()).sum();
    let mut out = String::new();
    out.push_str(&format!(
        "flight recorder: {total} incident(s) observed, {kept} snapshot(s) kept\n"
    ));
    for stream in ordered {
        if stream.incidents.is_empty() {
            continue;
        }
        out.push_str(&format!(
            "\nstream {}/{} ({} of {} incident(s) kept)\n",
            stream.label.name,
            stream.label.index,
            stream.incidents.len(),
            stream.incidents_seen,
        ));
        for (i, inc) in stream.incidents.iter().enumerate() {
            out.push_str(&format!(
                "  incident {} at t={} ns: {}\n",
                i + 1,
                inc.t,
                inc.reason
            ));
            for e in &inc.events {
                out.push_str("    ");
                render_event(&mut out, e);
                out.push('\n');
            }
        }
    }
    out
}

fn render_event(out: &mut String, e: &Event) {
    out.push_str(&format!("[{:>12}] ", e.t));
    if e.lane != crate::Lane::MAIN {
        out.push_str(&format!("{}/{} ", e.lane.name, e.lane.index));
    }
    match e.kind {
        EventKind::Begin => out.push_str(&format!("begin {}:{}", e.cat, e.name)),
        EventKind::End => out.push_str(&format!("end   {}:{}", e.cat, e.name)),
        EventKind::Instant => out.push_str(&format!("event {}:{}", e.cat, e.name)),
        EventKind::Complete { dur } => {
            out.push_str(&format!("span  {}:{} dur={}ns", e.cat, e.name, dur));
        }
        EventKind::Counter { value } => {
            out.push_str(&format!("count {}={}", e.name, value));
        }
    }
    for (name, value) in e.args.iter().flatten() {
        match value {
            ArgValue::U64(v) => out.push_str(&format!(" {name}={v}")),
            ArgValue::I64(v) => out.push_str(&format!(" {name}={v}")),
            ArgValue::F64(v) => out.push_str(&format!(" {name}={v}")),
            ArgValue::Str(s) => out.push_str(&format!(" {name}={s}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{arg1, ArgValue};
    use crate::sink::{SinkConfig, TelemetrySession};

    #[test]
    fn report_shows_reason_and_trailing_events() {
        let session = TelemetrySession::with_config(SinkConfig {
            flight_capacity: 3,
            ..SinkConfig::default()
        });
        {
            let _g = session.install("service", 2);
            crate::set_time(10_000);
            crate::instant_args("service", "enqueue", arg1("req", ArgValue::U64(1)));
            crate::instant("service", "dispatch");
            crate::instant("service", "complete_late");
            if crate::active() {
                crate::incident("deadline_miss req=1 late_us=310");
            }
        }
        let report = flight_report(&session.streams());
        assert!(report.contains("1 incident(s) observed, 1 snapshot(s) kept"));
        assert!(report.contains("stream service/2"));
        assert!(report.contains("deadline_miss req=1 late_us=310"));
        assert!(report.contains("event service:enqueue req=1"));
        assert!(report.contains("event service:complete_late"));
    }

    #[test]
    fn no_incidents_is_a_one_line_report() {
        let session = TelemetrySession::new();
        drop(session.install("quiet", 0));
        let report = flight_report(&session.streams());
        assert_eq!(
            report,
            "flight recorder: 0 incident(s) observed, 0 snapshot(s) kept\n"
        );
    }
}
