//! Flight recorder: bounded snapshots of recent events captured at the
//! moment something went wrong, plus a plain-text post-mortem renderer.
//!
//! The service loop and accelerator models call [`crate::incident`] when a
//! deadline miss, shed, fault-retry exhaustion, or quarantine fires; the
//! sink clones the tail of its ring into an [`Incident`]. After the run,
//! [`flight_report`] renders every captured incident as a readable
//! post-mortem: the reason line followed by the last events leading up to
//! it, newest last.

use crate::event::{ArgValue, Event, EventKind, TimeNs};
use crate::sink::Stream;

/// The well-known incident kinds the stack reports. The kind is encoded
/// as the first whitespace-delimited token of the incident reason, which
/// is also what the sink's per-kind retention cap keys on — so a flood of
/// hedges can't evict the one shard-failover snapshot, and vice versa.
///
/// Free-form reasons (any other first token) remain valid; this enum just
/// names the kinds the service, fleet, and accelerator layers emit so
/// call sites and post-mortem tooling agree on the spelling.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IncidentKind {
    /// A request completed after its deadline.
    DeadlineMiss,
    /// Admission control dropped a request because the bounded queue was
    /// full.
    ShedQueueFull,
    /// The dispatcher dropped a request no tier could serve in time.
    ShedHopeless,
    /// A request exhausted its fault-retry budget.
    FailedFaults,
    /// The circuit breaker quarantined an accelerator instance.
    Quarantine,
    /// A shard died and its keys/in-flight requests were re-routed (or
    /// lost, for an undefended fleet).
    ShardFailover,
    /// A hedge was duplicated to a second shard after the hedge delay.
    HedgeFired,
    /// A silently corrupted (unsafe) plan escaped past every defense in
    /// the configured policy — the event the integrity pipeline must
    /// drive to zero.
    SdcEscaped,
    /// The independent plan certifier rejected a returned plan; the
    /// request was re-planned at a degraded tier instead of shipping.
    CertifyFailed,
    /// A scrub probe sequence readmitted a quarantined instance after
    /// the required clean streak.
    ScrubReadmit,
    /// A completed plan spent more dynamic energy than the configured
    /// per-plan budget allows.
    EnergyBudgetBreach,
}

impl IncidentKind {
    /// All well-known kinds, in a fixed order.
    pub const ALL: [IncidentKind; 11] = [
        IncidentKind::DeadlineMiss,
        IncidentKind::ShedQueueFull,
        IncidentKind::ShedHopeless,
        IncidentKind::FailedFaults,
        IncidentKind::Quarantine,
        IncidentKind::ShardFailover,
        IncidentKind::HedgeFired,
        IncidentKind::SdcEscaped,
        IncidentKind::CertifyFailed,
        IncidentKind::ScrubReadmit,
        IncidentKind::EnergyBudgetBreach,
    ];

    /// The reason-prefix token for this kind.
    pub fn label(self) -> &'static str {
        match self {
            IncidentKind::DeadlineMiss => "deadline_miss",
            IncidentKind::ShedQueueFull => "shed_queue_full",
            IncidentKind::ShedHopeless => "shed_hopeless",
            IncidentKind::FailedFaults => "failed_faults",
            IncidentKind::Quarantine => "quarantine",
            IncidentKind::ShardFailover => "shard_failover",
            IncidentKind::HedgeFired => "hedge_fired",
            IncidentKind::SdcEscaped => "sdc_escaped",
            IncidentKind::CertifyFailed => "certify_failed",
            IncidentKind::ScrubReadmit => "scrub_readmit",
            IncidentKind::EnergyBudgetBreach => "energy_budget_breach",
        }
    }
}

/// Records an incident of a well-known kind: the reason is
/// `"<kind label> <detail>"`, so the per-kind snapshot cap groups it with
/// its peers. Allocates; guard hot call sites with [`crate::active`].
pub fn incident_kind(kind: IncidentKind, detail: &str) {
    crate::incident(&format!("{} {detail}", kind.label()));
}

/// One captured incident: the reason and the events leading up to it.
#[derive(Clone, Debug, PartialEq)]
pub struct Incident {
    /// Stream-cursor time when the incident fired.
    pub t: TimeNs,
    /// Why the snapshot was taken (e.g. `deadline_miss req=42 late_us=310`).
    pub reason: String,
    /// The last `flight_capacity` events before the incident.
    pub events: Vec<Event>,
}

/// Renders all incidents across streams as a plain-text report.
///
/// Streams are sorted by label (same canonical order as the trace
/// exporter), so the report is deterministic across thread counts.
pub fn flight_report(streams: &[Stream]) -> String {
    let mut ordered: Vec<&Stream> = streams.iter().collect();
    ordered.sort_by_key(|s| s.label);

    let total: u64 = ordered.iter().map(|s| s.incidents_seen).sum();
    let kept: usize = ordered.iter().map(|s| s.incidents.len()).sum();
    let mut out = String::new();
    out.push_str(&format!(
        "flight recorder: {total} incident(s) observed, {kept} snapshot(s) kept\n"
    ));
    // Tally the kept snapshots by kind (reason's first token), sorted by
    // label for determinism, so a post-mortem leads with the shape of the
    // failure before the per-incident detail.
    let mut by_kind: Vec<(&str, usize)> = Vec::new();
    for inc in ordered.iter().flat_map(|s| s.incidents.iter()) {
        let kind = inc.reason.split_whitespace().next().unwrap_or("");
        match by_kind.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, n)) => *n += 1,
            None => by_kind.push((kind, 1)),
        }
    }
    by_kind.sort_unstable();
    if !by_kind.is_empty() {
        let cells: Vec<String> = by_kind.iter().map(|(k, n)| format!("{k}={n}")).collect();
        out.push_str(&format!("kinds kept: {}\n", cells.join(" ")));
    }
    for stream in ordered {
        if stream.incidents.is_empty() {
            continue;
        }
        out.push_str(&format!(
            "\nstream {}/{} ({} of {} incident(s) kept)\n",
            stream.label.name,
            stream.label.index,
            stream.incidents.len(),
            stream.incidents_seen,
        ));
        for (i, inc) in stream.incidents.iter().enumerate() {
            out.push_str(&format!(
                "  incident {} at t={} ns: {}\n",
                i + 1,
                inc.t,
                inc.reason
            ));
            for e in &inc.events {
                out.push_str("    ");
                render_event(&mut out, e);
                out.push('\n');
            }
        }
    }
    out
}

fn render_event(out: &mut String, e: &Event) {
    out.push_str(&format!("[{:>12}] ", e.t));
    if e.lane != crate::Lane::MAIN {
        out.push_str(&format!("{}/{} ", e.lane.name, e.lane.index));
    }
    match e.kind {
        EventKind::Begin => out.push_str(&format!("begin {}:{}", e.cat, e.name)),
        EventKind::End => out.push_str(&format!("end   {}:{}", e.cat, e.name)),
        EventKind::Instant => out.push_str(&format!("event {}:{}", e.cat, e.name)),
        EventKind::Complete { dur } => {
            out.push_str(&format!("span  {}:{} dur={}ns", e.cat, e.name, dur));
        }
        EventKind::Counter { value } => {
            out.push_str(&format!("count {}={}", e.name, value));
        }
    }
    for (name, value) in e.args.iter().flatten() {
        match value {
            ArgValue::U64(v) => out.push_str(&format!(" {name}={v}")),
            ArgValue::I64(v) => out.push_str(&format!(" {name}={v}")),
            ArgValue::F64(v) => out.push_str(&format!(" {name}={v}")),
            ArgValue::Str(s) => out.push_str(&format!(" {name}={s}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{arg1, ArgValue};
    use crate::sink::{SinkConfig, TelemetrySession};

    #[test]
    fn report_shows_reason_and_trailing_events() {
        let session = TelemetrySession::with_config(SinkConfig {
            flight_capacity: 3,
            ..SinkConfig::default()
        });
        {
            let _g = session.install("service", 2);
            crate::set_time(10_000);
            crate::instant_args("service", "enqueue", arg1("req", ArgValue::U64(1)));
            crate::instant("service", "dispatch");
            crate::instant("service", "complete_late");
            if crate::active() {
                crate::incident("deadline_miss req=1 late_us=310");
            }
        }
        let report = flight_report(&session.streams());
        assert!(report.contains("1 incident(s) observed, 1 snapshot(s) kept"));
        assert!(report.contains("stream service/2"));
        assert!(report.contains("deadline_miss req=1 late_us=310"));
        assert!(report.contains("event service:enqueue req=1"));
        assert!(report.contains("event service:complete_late"));
    }

    #[test]
    fn fleet_incident_kinds_are_capped_independently() {
        let session = TelemetrySession::with_config(SinkConfig {
            max_incidents: 2,
            ..SinkConfig::default()
        });
        {
            let _g = session.install("fleet", 0);
            crate::set_time(5_000);
            // A flood of hedges must not evict the lone failover snapshot.
            for req in 0..5u64 {
                incident_kind(IncidentKind::HedgeFired, &format!("req={req} shard=3"));
            }
            incident_kind(IncidentKind::ShardFailover, "shard=7 rerouted=12");
        }
        let streams = session.streams();
        let kept: Vec<&str> = streams[0]
            .incidents
            .iter()
            .map(|i| i.reason.as_str())
            .collect();
        assert_eq!(
            kept,
            [
                "hedge_fired req=0 shard=3",
                "hedge_fired req=1 shard=3",
                "shard_failover shard=7 rerouted=12",
            ]
        );
        let report = flight_report(&streams);
        assert!(report.contains("6 incident(s) observed, 3 snapshot(s) kept"));
        assert!(report.contains("kinds kept: hedge_fired=2 shard_failover=1"));
    }

    #[test]
    fn certify_flood_cannot_evict_the_lone_escape_snapshot() {
        // The integrity pipeline's worst-case telemetry shape: a high SDC
        // rate produces a *flood* of certify rejections (each one a
        // defense success) around a single escaped unsafe plan (the event
        // a post-mortem exists to explain). The per-kind cap must keep
        // the escape snapshot no matter how many rejections surround it.
        let session = TelemetrySession::with_config(SinkConfig {
            max_incidents: 2,
            ..SinkConfig::default()
        });
        {
            let _g = session.install("service", 0);
            crate::set_time(8_000);
            for req in 0..20u64 {
                incident_kind(
                    IncidentKind::CertifyFailed,
                    &format!("req={req} inst=1 edge=3"),
                );
            }
            incident_kind(IncidentKind::SdcEscaped, "req=99 inst=1 tier=full");
            incident_kind(IncidentKind::ScrubReadmit, "inst=1 probes=4");
        }
        let streams = session.streams();
        let kept: Vec<&str> = streams[0]
            .incidents
            .iter()
            .map(|i| i.reason.as_str())
            .collect();
        assert_eq!(
            kept,
            [
                "certify_failed req=0 inst=1 edge=3",
                "certify_failed req=1 inst=1 edge=3",
                "sdc_escaped req=99 inst=1 tier=full",
                "scrub_readmit inst=1 probes=4",
            ]
        );
        let report = flight_report(&streams);
        assert!(report.contains("22 incident(s) observed, 4 snapshot(s) kept"));
        assert!(report.contains("kinds kept: certify_failed=2 scrub_readmit=1 sdc_escaped=1"));
    }

    #[test]
    fn kind_labels_are_the_reason_prefixes() {
        for kind in IncidentKind::ALL {
            assert!(!kind.label().contains(char::is_whitespace));
        }
        assert_eq!(IncidentKind::ShardFailover.label(), "shard_failover");
        assert_eq!(IncidentKind::HedgeFired.label(), "hedge_fired");
        assert_eq!(
            IncidentKind::EnergyBudgetBreach.label(),
            "energy_budget_breach"
        );
    }

    #[test]
    fn no_incidents_is_a_one_line_report() {
        let session = TelemetrySession::new();
        drop(session.install("quiet", 0));
        let report = flight_report(&session.streams());
        assert_eq!(
            report,
            "flight recorder: 0 incident(s) observed, 0 snapshot(s) kept\n"
        );
    }
}
