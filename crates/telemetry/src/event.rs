//! The event model: what one telemetry record looks like.
//!
//! Everything here is `Copy` and allocation-free: an [`Event`] is a fixed
//! 2-argument record of `'static` strings and plain numbers, so recording
//! one is a handful of stores into a preallocated ring. Allocation (and
//! string formatting) only happens at export time or when a flight-recorder
//! incident is snapshotted.

/// Timestamps are integer nanoseconds, matching `mp_sim::vtime::VirtualNs`.
///
/// The sink keeps a *monotone cursor* over these: callers feed in virtual
/// time with [`crate::set_time`] and every recorded event is stamped with a
/// strictly increasing value, so event order is total and deterministic.
pub type TimeNs = u64;

/// A typed argument value attached to an event.
///
/// Restricted to plain numbers and `'static` strings so events stay `Copy`
/// and recording never allocates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArgValue {
    /// An unsigned integer (counts, ids).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (rates, ratios). Non-finite values export as 0.
    F64(f64),
    /// A static string (tier labels, fault kinds, verdicts).
    Str(&'static str),
}

/// A named argument: `("tier", ArgValue::Str("full"))`.
pub type Arg = (&'static str, ArgValue);

/// The fixed-width argument slot array carried by every event.
pub type Args = [Option<Arg>; 2];

/// The empty argument list.
pub const NO_ARGS: Args = [None, None];

/// Builds a one-argument list.
pub const fn arg1(name: &'static str, value: ArgValue) -> Args {
    [Some((name, value)), None]
}

/// Builds a two-argument list.
pub const fn arg2(a: &'static str, av: ArgValue, b: &'static str, bv: ArgValue) -> Args {
    [Some((a, av)), Some((b, bv))]
}

/// A track within a stream: rendered as one Chrome-trace thread row.
///
/// `Lane::MAIN` carries the nested span stack; extra lanes carry
/// [`EventKind::Complete`] events for parallel hardware resources (SAS
/// dispatch lanes, CDU slots, service instances) so they show up as
/// side-by-side rows in Perfetto.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lane {
    /// Lane family, e.g. `"cdu"` or `"inst"`.
    pub name: &'static str,
    /// Index within the family.
    pub index: u32,
}

impl Lane {
    /// The default lane carrying the span stack.
    pub const MAIN: Lane = Lane::new("main", 0);

    /// A lane with the given family name and index.
    pub const fn new(name: &'static str, index: u32) -> Lane {
        Lane { name, index }
    }
}

/// What kind of record an event is (mirrors Chrome trace-event phases).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EventKind {
    /// Span open (`ph:"B"`). Must be balanced by an [`EventKind::End`].
    Begin,
    /// Span close (`ph:"E"`).
    End,
    /// A point event (`ph:"i"`).
    Instant,
    /// A span recorded after the fact with an explicit duration
    /// (`ph:"X"`); used for lanes whose occupancy is known on retire.
    Complete {
        /// Span duration in the same unit as the timestamp.
        dur: TimeNs,
    },
    /// A counter-track sample (`ph:"C"`).
    Counter {
        /// The sampled value.
        value: f64,
    },
}

/// One telemetry record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Event {
    /// Monotone timestamp (see [`TimeNs`]).
    pub t: TimeNs,
    /// The track this event belongs to.
    pub lane: Lane,
    /// Category, e.g. `"planner"`, `"service"`, `"collision"`, `"core"`.
    pub cat: &'static str,
    /// Event name, e.g. `"plan"`, `"cd_query"`, `"serve"`.
    pub name: &'static str,
    /// Record kind.
    pub kind: EventKind,
    /// Up to two typed arguments.
    pub args: Args,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_small_and_copy() {
        let e = Event {
            t: 7,
            lane: Lane::MAIN,
            cat: "planner",
            name: "plan",
            kind: EventKind::Begin,
            args: arg1("tier", ArgValue::Str("full")),
        };
        let f = e; // Copy
        assert_eq!(e, f);
        // Stays a small fixed-size record: recording must not balloon.
        // (&'static str is a fat pointer, so ~11 words total today.)
        assert!(std::mem::size_of::<Event>() <= 192);
    }

    #[test]
    fn arg_builders() {
        assert_eq!(NO_ARGS, [None, None]);
        let a = arg2("a", ArgValue::U64(1), "b", ArgValue::I64(-1));
        assert_eq!(a[0], Some(("a", ArgValue::U64(1))));
        assert_eq!(a[1], Some(("b", ArgValue::I64(-1))));
    }

    #[test]
    fn lanes_order_by_name_then_index() {
        let a = Lane::new("cdu", 0);
        let b = Lane::new("cdu", 3);
        let c = Lane::new("inst", 0);
        assert!(a < b && b < c);
    }
}
