//! Per-thread ring-buffer sinks and the session that collects them.
//!
//! The recording model is built for determinism under the workspace's
//! thread-pool parallelism:
//!
//! * Each unit of traced work installs a [`TelemetrySession`] *stream*
//!   (a `(name, index)` label) on its thread with
//!   [`TelemetrySession::install`]. Recording goes to a plain thread-local
//!   [`LocalSink`] — no locks, no atomics on the hot path.
//! * Timestamps come from a **monotone cursor**: [`set_time`] advances it
//!   to the caller's virtual time, and every recorded event consumes one
//!   cursor tick, so ordering within a stream is strict and total.
//! * When the guard drops, the finished stream is moved into the session.
//!   Export sorts streams by label, so the trace bytes are identical no
//!   matter which threads ran which streams in which order.
//!
//! When no stream is installed every recording call is a thread-local
//! `Option` check and an immediate return, so always-compiled call sites
//! (planner, service) cost ~nothing in untraced runs. Hot kernels
//! (per-pose collision, SAS dispatch) additionally hide their call sites
//! behind the downstream crates' `telemetry` cargo feature, so the
//! allocation-free paths carry zero extra instructions by default.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::Mutex;

use crate::event::{Arg, Args, Event, EventKind, Lane, TimeNs, NO_ARGS};
use crate::flight::Incident;

/// Sizing and sampling knobs for a session's sinks.
#[derive(Clone, Debug)]
pub struct SinkConfig {
    /// Events retained per stream; the oldest are dropped (and counted)
    /// beyond this.
    pub ring_capacity: usize,
    /// Events snapshotted from the tail of the ring into each
    /// flight-recorder incident.
    pub flight_capacity: usize,
    /// Incident snapshots retained per stream *per incident kind* (the
    /// first whitespace-delimited token of the reason); later incidents
    /// of a kind are only counted. The per-kind cap keeps rare severe
    /// incidents (a deadline miss) from being crowded out by floods of
    /// common ones (queue-full sheds under sustained overload).
    pub max_incidents: usize,
    /// Record every Nth [`sampled_span`]; `0` disables sampled spans
    /// entirely (the "on but unsampled" overhead-guard configuration).
    pub sample_every: u32,
}

impl Default for SinkConfig {
    fn default() -> SinkConfig {
        SinkConfig {
            ring_capacity: 65_536,
            flight_capacity: 64,
            max_incidents: 8,
            sample_every: 1,
        }
    }
}

/// The per-thread recording state for one installed stream.
#[derive(Debug)]
struct LocalSink {
    label: Lane,
    cfg: SinkConfig,
    cursor: TimeNs,
    ring: VecDeque<Event>,
    dropped: u64,
    sample_countdown: u32,
    incidents: Vec<Incident>,
    incidents_seen: u64,
}

impl LocalSink {
    fn new(label: Lane, cfg: SinkConfig) -> LocalSink {
        let sample_countdown = cfg.sample_every.saturating_sub(1);
        LocalSink {
            label,
            cfg,
            cursor: 0,
            ring: VecDeque::new(),
            dropped: 0,
            sample_countdown,
            incidents: Vec::new(),
            incidents_seen: 0,
        }
    }

    /// Stamps and stores an event, consuming one cursor tick.
    fn record(
        &mut self,
        lane: Lane,
        cat: &'static str,
        name: &'static str,
        kind: EventKind,
        args: Args,
    ) {
        let t = self.cursor;
        self.cursor += 1;
        self.push(Event {
            t,
            lane,
            cat,
            name,
            kind,
            args,
        });
    }

    fn push(&mut self, event: Event) {
        if self.ring.len() == self.cfg.ring_capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(event);
    }

    fn into_stream(self) -> Stream {
        Stream {
            label: self.label,
            events: self.ring.into_iter().collect(),
            dropped: self.dropped,
            incidents: self.incidents,
            incidents_seen: self.incidents_seen,
        }
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<LocalSink>> = const { RefCell::new(None) };
}

/// One finished stream of events, ready for export.
#[derive(Clone, Debug)]
pub struct Stream {
    /// The `(name, index)` label passed to [`TelemetrySession::install`].
    pub label: Lane,
    /// Recorded events in timestamp order.
    pub events: Vec<Event>,
    /// Events evicted because the ring was full.
    pub dropped: u64,
    /// Flight-recorder snapshots (first `max_incidents` only).
    pub incidents: Vec<Incident>,
    /// Total incidents observed, including ones past `max_incidents`.
    pub incidents_seen: u64,
}

/// Collects the streams of one traced run.
///
/// A session is shared by reference across worker threads; each worker
/// installs its own uniquely-labelled stream, records locklessly, and the
/// finished stream is folded in when the guard drops. Labels should be
/// unique per session — [`streams`](TelemetrySession::streams) sorts by
/// label to make export order independent of thread scheduling.
#[derive(Debug, Default)]
pub struct TelemetrySession {
    cfg: SinkConfig,
    collected: Mutex<Vec<Stream>>,
}

impl TelemetrySession {
    /// A session with default sizing.
    pub fn new() -> TelemetrySession {
        TelemetrySession::default()
    }

    /// A session with explicit sizing/sampling knobs.
    pub fn with_config(cfg: SinkConfig) -> TelemetrySession {
        TelemetrySession {
            cfg,
            collected: Mutex::new(Vec::new()),
        }
    }

    /// The session's sink configuration.
    pub fn config(&self) -> &SinkConfig {
        &self.cfg
    }

    /// Installs a stream labelled `(name, index)` on the current thread.
    ///
    /// Recording free functions ([`span`], [`instant`], …) write into it
    /// until the returned guard drops, at which point the stream moves
    /// into the session and any previously installed stream is restored
    /// (installs nest).
    pub fn install(&self, name: &'static str, index: u32) -> SinkGuard<'_> {
        let prev = ACTIVE.with(|a| {
            a.borrow_mut()
                .replace(LocalSink::new(Lane::new(name, index), self.cfg.clone()))
        });
        SinkGuard {
            session: self,
            prev,
            _not_send: PhantomData,
        }
    }

    /// All collected streams, sorted by label.
    ///
    /// Streams still installed on some thread are not included; drop their
    /// guards first.
    pub fn streams(&self) -> Vec<Stream> {
        let mut v = self
            .collected
            .lock()
            .expect("telemetry session poisoned")
            .clone();
        v.sort_by_key(|s| s.label);
        v
    }

    /// Total incidents observed across all collected streams.
    pub fn incidents_seen(&self) -> u64 {
        self.collected
            .lock()
            .expect("telemetry session poisoned")
            .iter()
            .map(|s| s.incidents_seen)
            .sum()
    }

    fn adopt(&self, sink: LocalSink) {
        self.collected
            .lock()
            .expect("telemetry session poisoned")
            .push(sink.into_stream());
    }
}

/// Uninstalls the thread's stream on drop, folding it into the session.
///
/// Deliberately `!Send`: the guard must drop on the thread that installed
/// the stream.
#[must_use = "the stream records only while the guard is alive"]
#[derive(Debug)]
pub struct SinkGuard<'a> {
    session: &'a TelemetrySession,
    prev: Option<LocalSink>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for SinkGuard<'_> {
    fn drop(&mut self) {
        let finished = ACTIVE.with(|a| {
            let mut slot = a.borrow_mut();
            let finished = slot.take();
            *slot = self.prev.take();
            finished
        });
        if let Some(sink) = finished {
            self.session.adopt(sink);
        }
    }
}

/// Whether a stream is installed on the current thread.
///
/// Use this to skip argument preparation (string formatting, counter
/// lookups) that only matters when tracing, e.g.
/// `if mp_telemetry::active() { telemetry::incident(&format!(...)) }`.
#[inline]
pub fn active() -> bool {
    ACTIVE.with(|a| a.borrow().is_some())
}

/// Advances the stream's clock to virtual time `t` (monotone: never moves
/// backwards). No-op when no stream is installed.
#[inline]
pub fn set_time(t: TimeNs) {
    with_sink(|s| s.cursor = s.cursor.max(t));
}

#[inline]
fn with_sink<R>(f: impl FnOnce(&mut LocalSink) -> R) -> Option<R> {
    ACTIVE.with(|a| a.borrow_mut().as_mut().map(f))
}

/// Records a point event.
#[inline]
pub fn instant(cat: &'static str, name: &'static str) {
    instant_args(cat, name, NO_ARGS);
}

/// Records a point event with arguments.
#[inline]
pub fn instant_args(cat: &'static str, name: &'static str, args: Args) {
    with_sink(|s| s.record(Lane::MAIN, cat, name, EventKind::Instant, args));
}

/// Samples a counter track (queue depth, occupancy, …).
#[inline]
pub fn counter(name: &'static str, value: f64) {
    counter_on(Lane::MAIN, name, value);
}

/// Samples a counter track on an explicit lane.
#[inline]
pub fn counter_on(lane: Lane, name: &'static str, value: f64) {
    with_sink(|s| s.record(lane, "counter", name, EventKind::Counter { value }, NO_ARGS));
}

/// Records a complete span with explicit begin time and duration on a
/// lane, without consuming cursor ticks.
///
/// This is the lane-occupancy primitive: SAS/CDU dispatch slots and
/// service instances report `(start, duration)` pairs on retire, which
/// render as parallel rows in Perfetto. The stream cursor is nudged to
/// `t0` so subsequent main-lane events stay ordered after it.
#[inline]
pub fn complete_at(
    lane: Lane,
    cat: &'static str,
    name: &'static str,
    t0: TimeNs,
    dur: TimeNs,
    args: Args,
) {
    with_sink(|s| {
        s.cursor = s.cursor.max(t0);
        s.push(Event {
            t: t0,
            lane,
            cat,
            name,
            kind: EventKind::Complete { dur },
            args,
        });
    });
}

/// Opens a span on the main lane; the returned guard closes it on drop.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
    span_args(cat, name, NO_ARGS)
}

/// Opens a span with arguments on the begin event.
#[inline]
pub fn span_args(cat: &'static str, name: &'static str, args: Args) -> SpanGuard {
    let armed = with_sink(|s| s.record(Lane::MAIN, cat, name, EventKind::Begin, args)).is_some();
    SpanGuard { armed, cat, name }
}

/// Opens a span subject to the sink's `sample_every` knob.
///
/// Intended for per-query hot paths: with `sample_every = n` only every
/// nth call records; with `0` none do (but the countdown check still
/// runs, which is what the overhead-guard bench measures).
#[inline]
pub fn sampled_span(cat: &'static str, name: &'static str) -> SpanGuard {
    let armed = with_sink(|s| {
        if s.cfg.sample_every == 0 {
            return false;
        }
        if s.sample_countdown == 0 {
            s.sample_countdown = s.cfg.sample_every - 1;
            s.record(Lane::MAIN, cat, name, EventKind::Begin, NO_ARGS);
            true
        } else {
            s.sample_countdown -= 1;
            false
        }
    })
    .unwrap_or(false);
    SpanGuard { armed, cat, name }
}

/// Snapshots the tail of the ring as a flight-recorder incident.
///
/// Call on deadline misses, quarantines, sheds — anything worth a
/// post-mortem. Allocates (it clones recent events and the reason), so
/// guard call sites with [`active`] when the reason string is formatted.
/// The first `max_incidents` snapshots of each incident *kind* (the
/// reason's first token) are kept; everything is counted.
pub fn incident(reason: &str) {
    with_sink(|s| {
        s.incidents_seen += 1;
        let kind = reason.split_whitespace().next().unwrap_or("");
        let kept_of_kind = s
            .incidents
            .iter()
            .filter(|i| i.reason.split_whitespace().next().unwrap_or("") == kind)
            .count();
        if kept_of_kind < s.cfg.max_incidents {
            let start = s.ring.len().saturating_sub(s.cfg.flight_capacity);
            let events: Vec<Event> = s.ring.iter().skip(start).copied().collect();
            s.incidents.push(Incident {
                t: s.cursor,
                reason: reason.to_string(),
                events,
            });
        }
    });
}

/// Closes its span on drop (or explicitly, with result arguments, via
/// [`SpanGuard::end_args`]).
#[derive(Debug)]
pub struct SpanGuard {
    armed: bool,
    cat: &'static str,
    name: &'static str,
}

impl SpanGuard {
    /// Whether this guard actually opened a span (a stream was installed
    /// and, for sampled spans, the sample fired).
    #[inline]
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// Closes the span with result arguments on the end event.
    #[inline]
    pub fn end_args(mut self, args: Args) {
        if self.armed {
            self.armed = false;
            with_sink(|s| s.record(Lane::MAIN, self.cat, self.name, EventKind::End, args));
        }
    }

    /// Attaches an argument pair lazily: returns the args unchanged so
    /// call sites can build them only when armed.
    #[inline]
    pub fn end_with(self, f: impl FnOnce() -> [Option<Arg>; 2]) {
        if self.armed {
            let args = f();
            self.end_args(args);
        }
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if self.armed {
            self.armed = false;
            with_sink(|s| s.record(Lane::MAIN, self.cat, self.name, EventKind::End, NO_ARGS));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{arg1, ArgValue};

    #[test]
    fn no_stream_means_no_ops() {
        assert!(!active());
        set_time(5);
        instant("t", "x");
        counter("depth", 1.0);
        let g = span("t", "s");
        assert!(!g.is_armed());
        drop(g);
        incident("nothing");
        assert!(!active());
    }

    #[test]
    fn events_get_strictly_increasing_times() {
        let session = TelemetrySession::new();
        {
            let _g = session.install("test", 0);
            set_time(100);
            instant("t", "a");
            instant("t", "b");
            set_time(50); // monotone: must not rewind
            instant("t", "c");
        }
        let streams = session.streams();
        assert_eq!(streams.len(), 1);
        let ts: Vec<u64> = streams[0].events.iter().map(|e| e.t).collect();
        assert_eq!(ts, vec![100, 101, 102]);
    }

    #[test]
    fn spans_nest_and_close_on_drop() {
        let session = TelemetrySession::new();
        {
            let _g = session.install("test", 0);
            let outer = span_args("t", "outer", arg1("k", ArgValue::U64(1)));
            {
                let _inner = span("t", "inner");
            }
            outer.end_args(arg1("ok", ArgValue::Str("yes")));
        }
        let s = &session.streams()[0];
        let kinds: Vec<(&str, &EventKind)> = s.events.iter().map(|e| (e.name, &e.kind)).collect();
        assert_eq!(kinds.len(), 4);
        assert_eq!(kinds[0], ("outer", &EventKind::Begin));
        assert_eq!(kinds[1], ("inner", &EventKind::Begin));
        assert_eq!(kinds[2], ("inner", &EventKind::End));
        assert_eq!(kinds[3], ("outer", &EventKind::End));
        assert_eq!(s.events[3].args, arg1("ok", ArgValue::Str("yes")));
    }

    #[test]
    fn installs_nest_and_restore() {
        let session = TelemetrySession::new();
        let outer_session = TelemetrySession::new();
        {
            let _a = outer_session.install("outer", 0);
            instant("t", "before");
            {
                let _b = session.install("inner", 7);
                instant("t", "nested");
            }
            instant("t", "after");
        }
        let inner = session.streams();
        assert_eq!(inner.len(), 1);
        assert_eq!(inner[0].label, Lane::new("inner", 7));
        assert_eq!(inner[0].events.len(), 1);
        let outer = outer_session.streams();
        assert_eq!(outer[0].events.len(), 2);
        assert_eq!(outer[0].events[1].name, "after");
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let session = TelemetrySession::with_config(SinkConfig {
            ring_capacity: 4,
            ..SinkConfig::default()
        });
        {
            let _g = session.install("test", 0);
            for _ in 0..10 {
                instant("t", "e");
            }
        }
        let s = &session.streams()[0];
        assert_eq!(s.events.len(), 4);
        assert_eq!(s.dropped, 6);
        assert_eq!(s.events[0].t, 6); // oldest six evicted
    }

    #[test]
    fn sampling_every_third() {
        let session = TelemetrySession::with_config(SinkConfig {
            sample_every: 3,
            ..SinkConfig::default()
        });
        {
            let _g = session.install("test", 0);
            for _ in 0..9 {
                let _s = sampled_span("t", "hot");
            }
        }
        let s = &session.streams()[0];
        // 3 sampled spans x (Begin + End).
        assert_eq!(s.events.len(), 6);
    }

    #[test]
    fn sampling_zero_disables() {
        let session = TelemetrySession::with_config(SinkConfig {
            sample_every: 0,
            ..SinkConfig::default()
        });
        {
            let _g = session.install("test", 0);
            for _ in 0..100 {
                let _s = sampled_span("t", "hot");
            }
            // Plain spans still record.
            let _s = span("t", "cold");
        }
        assert_eq!(session.streams()[0].events.len(), 2);
    }

    #[test]
    fn incident_snapshots_ring_tail() {
        let session = TelemetrySession::with_config(SinkConfig {
            flight_capacity: 2,
            max_incidents: 1,
            ..SinkConfig::default()
        });
        {
            let _g = session.install("test", 0);
            for _ in 0..5 {
                instant("t", "e");
            }
            incident("deadline miss");
            incident("deadline second-of-kind (counted, not kept)");
            // A different kind gets its own per-kind budget.
            incident("quarantine inst=3");
        }
        let s = &session.streams()[0];
        assert_eq!(s.incidents.len(), 2);
        assert_eq!(s.incidents_seen, 3);
        assert_eq!(s.incidents[0].reason, "deadline miss");
        assert_eq!(s.incidents[1].reason, "quarantine inst=3");
        assert_eq!(s.incidents[0].events.len(), 2);
        assert_eq!(s.incidents[0].events[1].t, 4);
    }

    #[test]
    fn streams_sort_by_label() {
        let session = TelemetrySession::new();
        drop(session.install("b", 0));
        drop(session.install("a", 1));
        drop(session.install("a", 0));
        let labels: Vec<Lane> = session.streams().iter().map(|s| s.label).collect();
        assert_eq!(
            labels,
            vec![Lane::new("a", 0), Lane::new("a", 1), Lane::new("b", 0)]
        );
    }

    #[test]
    fn complete_at_nudges_cursor() {
        let session = TelemetrySession::new();
        {
            let _g = session.install("test", 0);
            complete_at(Lane::new("inst", 2), "service", "serve", 500, 120, NO_ARGS);
            instant("t", "after");
        }
        let s = &session.streams()[0];
        assert_eq!(s.events[0].t, 500);
        assert_eq!(s.events[0].kind, EventKind::Complete { dur: 120 });
        assert_eq!(s.events[0].lane, Lane::new("inst", 2));
        assert!(s.events[1].t >= 500);
    }
}
