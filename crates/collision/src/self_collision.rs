//! Robot self-collision checking — an extension beyond the paper's scope.
//!
//! The paper's accelerator checks the robot against the *environment*; a
//! production motion planner must also reject configurations where the arm
//! folds into itself. Link pairs are tested OBB-vs-OBB with the general
//! separating-axis test; adjacent links (which legitimately touch at their
//! shared joint) are excluded, as is standard practice.

use mp_geometry::sat::obb_obb_overlaps;
use mp_geometry::Obb;
use mp_robot::fk::link_obbs;
use mp_robot::{JointConfig, RobotModel, TrigMode};

/// Uniform deflation applied to link boxes for self-checks.
///
/// The environment-facing link boxes are deliberately padded past their
/// joints (a link must cover its joint housing), so neighbouring-but-not-
/// adjacent boxes graze each other in *every* configuration. Deflating the
/// boxes for the self-test removes that structural contact while keeping
/// genuine fold-overs detectable — the same role as the negative padding
/// in a MoveIt-style allowed-collision-matrix tuning.
pub const SELF_CHECK_DEFLATION: f32 = 0.75;

/// Which link pairs a robot checks for self-collision.
///
/// # Examples
///
/// ```
/// use mp_collision::self_collision::SelfCollisionMatrix;
/// use mp_robot::RobotModel;
///
/// let robot = RobotModel::jaco2();
/// let m = SelfCollisionMatrix::standard(&robot);
/// // Adjacent links are excluded; distant pairs are checked.
/// assert!(!m.pairs().is_empty());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SelfCollisionMatrix {
    pairs: Vec<(usize, usize)>,
}

impl SelfCollisionMatrix {
    /// The standard matrix: every link pair whose attachment frames differ
    /// by more than two joints. Adjacent links share a joint and touch by
    /// construction, and next-neighbours cluster around the same joint
    /// housing (shoulder, elbow) — both are structurally in contact for
    /// the padded link boxes, so only genuinely foldable pairs are checked.
    pub fn standard(robot: &RobotModel) -> SelfCollisionMatrix {
        let links = robot.links();
        let mut pairs = Vec::new();
        for i in 0..links.len() {
            for j in (i + 1)..links.len() {
                let fi = links[i].frame as isize;
                let fj = links[j].frame as isize;
                if (fi - fj).abs() > 2 {
                    pairs.push((i, j));
                }
            }
        }
        SelfCollisionMatrix { pairs }
    }

    /// An explicit pair list (for robots with known always-safe pairs).
    ///
    /// # Panics
    ///
    /// Panics if any pair is not strictly ordered (`i < j`).
    pub fn from_pairs(pairs: Vec<(usize, usize)>) -> SelfCollisionMatrix {
        assert!(
            pairs.iter().all(|&(i, j)| i < j),
            "pairs must be strictly ordered (i < j)"
        );
        SelfCollisionMatrix { pairs }
    }

    /// The checked pairs.
    pub fn pairs(&self) -> &[(usize, usize)] {
        &self.pairs
    }

    /// Whether the robot self-collides at `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.dof()` does not match the robot.
    pub fn check(&self, robot: &RobotModel, cfg: &JointConfig) -> bool {
        self.first_colliding_pair(robot, cfg).is_some()
    }

    /// The first colliding link pair at `cfg`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.dof()` does not match the robot.
    pub fn first_colliding_pair(
        &self,
        robot: &RobotModel,
        cfg: &JointConfig,
    ) -> Option<(usize, usize)> {
        let obbs: Vec<Obb<f32>> = link_obbs(robot, cfg, TrigMode::Exact)
            .into_iter()
            .map(|o| Obb::new(o.center, o.half * SELF_CHECK_DEFLATION, o.rotation))
            .collect();
        self.pairs
            .iter()
            .copied()
            .find(|&(i, j)| obb_obb_overlaps(&obbs[i], &obbs[j]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_matrix_excludes_adjacent_links() {
        let robot = RobotModel::jaco2();
        let m = SelfCollisionMatrix::standard(&robot);
        for &(i, j) in m.pairs() {
            let fi = robot.links()[i].frame as isize;
            let fj = robot.links()[j].frame as isize;
            assert!((fi - fj).abs() > 2, "near-adjacent pair ({i},{j}) included");
        }
        assert!(m.pairs().len() >= 6, "Jaco2 should check several pairs");
    }

    #[test]
    fn home_poses_are_self_collision_free() {
        for robot in [RobotModel::jaco2(), RobotModel::baxter()] {
            let m = SelfCollisionMatrix::standard(&robot);
            assert!(
                !m.check(&robot, &robot.home()),
                "{} home pose self-collides",
                robot.name()
            );
        }
    }

    #[test]
    fn folded_planar_arm_self_collides() {
        // Fold the elbow fully back: link 2 lies on top of link 1.
        let robot = RobotModel::planar_2dof();
        let m = SelfCollisionMatrix::from_pairs(vec![(0, 1)]);
        let folded = JointConfig::new(vec![0.0, 3.1]);
        assert!(m.check(&robot, &folded));
        let pair = m.first_colliding_pair(&robot, &folded);
        assert_eq!(pair, Some((0, 1)));
        // Stretched out: no self-collision.
        assert!(!m.check(&robot, &JointConfig::new(vec![0.0, 0.0])));
    }

    #[test]
    fn most_random_poses_are_self_collision_free() {
        // Self-collision should be the exception, not the rule, within
        // joint limits; a high rate would indicate broken link geometry.
        use rand::{rngs::StdRng, SeedableRng};
        let robot = RobotModel::baxter();
        let m = SelfCollisionMatrix::standard(&robot);
        let mut rng = StdRng::seed_from_u64(3);
        let mut collisions = 0;
        let total = 200;
        for _ in 0..total {
            if m.check(&robot, &robot.sample_config(&mut rng)) {
                collisions += 1;
            }
        }
        assert!(
            collisions * 3 < total,
            "{collisions}/{total} random poses self-collide"
        );
    }

    #[test]
    #[should_panic(expected = "strictly ordered")]
    fn unordered_pairs_rejected() {
        let _ = SelfCollisionMatrix::from_pairs(vec![(2, 1)]);
    }
}
