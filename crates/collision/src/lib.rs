//! Software reference collision detection for the MPAccel reproduction.
//!
//! This crate is the *oracle*: a straightforward, exact implementation of
//! robot–environment collision detection (§2.2) that the cycle-level
//! hardware models in `mpaccel-core` are validated against.
//!
//! A collision query takes a joint configuration, computes the robot's
//! per-link OBBs by forward kinematics, and tests each OBB against the
//! environment octree using the early-exit traversal with the
//! separating-axis test at the leaves. Motions (straight C-space segments)
//! are checked by discretizing them into poses (Fig 6a).
//!
//! # Examples
//!
//! ```
//! use mp_collision::{CollisionChecker, SoftwareChecker};
//! use mp_octree::{Scene, SceneConfig};
//! use mp_robot::RobotModel;
//!
//! let scene = Scene::random(SceneConfig::paper(), 0);
//! let mut checker = SoftwareChecker::new(RobotModel::jaco2(), scene.octree());
//! let home_free = !checker.check_pose(&checker.robot().home());
//! assert!(home_free); // scenes keep a clearance around the base
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod metrics;
pub mod motion;
pub mod self_collision;

pub use checker::{attributed, CdStats, CollisionChecker, SoftwareChecker};
pub use motion::{
    check_motion, check_path, MotionResult, RakeValidator, DEFAULT_CSPACE_STEP, RAKE_WIDTH,
};
pub use self_collision::SelfCollisionMatrix;
