//! Process-wide collision-detection throughput counters.
//!
//! The benchmark engine reports CD-checks/sec in `BENCH.json`; every
//! pose-level query — oracle or cycle-level hardware model — records
//! itself here. The counter is monotone and relaxed (a single uncontended
//! atomic increment per pose query, invisible next to the FK + traversal
//! cost of the query itself), and the total is deterministic for a given
//! workload: only the interleaving of increments varies across thread
//! counts, never the sum.
//!
//! The storage is an `mp_telemetry::Counter` (the unified metrics layer);
//! [`record_pose_checks`] / [`pose_checks_total`] remain as thin shims so
//! existing call sites keep working unchanged.

use mp_telemetry::Counter;

static CD_POSE_CHECKS: Counter = Counter::new();

/// Records `n` pose-level collision checks.
#[inline]
pub fn record_pose_checks(n: u64) {
    CD_POSE_CHECKS.add(n);
}

/// Total pose-level collision checks recorded by this process so far.
///
/// Take a snapshot before and after a region to attribute checks to it.
pub fn pose_checks_total() -> u64 {
    CD_POSE_CHECKS.get()
}

/// Exports the process-wide counters into a telemetry registry.
pub fn export_into(registry: &mp_telemetry::Registry) {
    registry.set_counter("collision.pose_checks_total", pose_checks_total());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotone() {
        let before = pose_checks_total();
        record_pose_checks(3);
        record_pose_checks(2);
        // Other tests may run concurrently and bump the counter too, so
        // assert a lower bound only.
        assert!(pose_checks_total() >= before + 5);
    }

    #[test]
    fn export_lands_in_registry() {
        record_pose_checks(1);
        let r = mp_telemetry::Registry::new();
        export_into(&r);
        assert!(r.counter_value("collision.pose_checks_total").unwrap() >= 1);
    }
}
