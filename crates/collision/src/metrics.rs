//! Process-wide collision-detection throughput counters.
//!
//! The benchmark engine reports CD-checks/sec in `BENCH.json`; every
//! pose-level query — oracle or cycle-level hardware model — records
//! itself here. The counter is monotone and relaxed (a single uncontended
//! atomic increment per pose query, invisible next to the FK + traversal
//! cost of the query itself), and the total is deterministic for a given
//! workload: only the interleaving of increments varies across thread
//! counts, never the sum.

use std::sync::atomic::{AtomicU64, Ordering};

static CD_POSE_CHECKS: AtomicU64 = AtomicU64::new(0);

/// Records `n` pose-level collision checks.
#[inline]
pub fn record_pose_checks(n: u64) {
    CD_POSE_CHECKS.fetch_add(n, Ordering::Relaxed);
}

/// Total pose-level collision checks recorded by this process so far.
///
/// Take a snapshot before and after a region to attribute checks to it.
pub fn pose_checks_total() -> u64 {
    CD_POSE_CHECKS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotone() {
        let before = pose_checks_total();
        record_pose_checks(3);
        record_pose_checks(2);
        // Other tests may run concurrently and bump the counter too, so
        // assert a lower bound only.
        assert!(pose_checks_total() >= before + 5);
    }
}
