//! Process-wide collision-detection throughput counters.
//!
//! The benchmark engine reports CD-checks/sec in `BENCH.json`; every
//! pose-level query — oracle or cycle-level hardware model — records
//! itself here. The counter is monotone and relaxed (a single uncontended
//! atomic increment per pose query, invisible next to the FK + traversal
//! cost of the query itself), and the total is deterministic for a given
//! workload: only the interleaving of increments varies across thread
//! counts, never the sum.
//!
//! The storage is an `mp_telemetry::Counter` (the unified metrics layer);
//! [`record_pose_checks`] / [`pose_checks_total`] remain as thin shims so
//! existing call sites keep working unchanged.

use mp_telemetry::Counter;

static CD_POSE_CHECKS: Counter = Counter::new();
static CD_NODES_VISITED: Counter = Counter::new();
static CD_BOX_TESTS: Counter = Counter::new();
static CD_MULTS: Counter = Counter::new();

/// Records `n` pose-level collision checks.
#[inline]
pub fn record_pose_checks(n: u64) {
    CD_POSE_CHECKS.add(n);
}

/// Records the traversal work of one pose query (octree nodes visited,
/// primitive tests, multiplications) — three relaxed adds per *query*,
/// not per node, so the inner walk stays register-resident. Feeds the
/// process-wide energy figure in `BENCH.json` (pJ per CD check).
#[inline]
pub fn record_pose_work(nodes_visited: u64, box_tests: u64, mults: u64) {
    CD_NODES_VISITED.add(nodes_visited);
    CD_BOX_TESTS.add(box_tests);
    CD_MULTS.add(mults);
}

/// Total pose-level collision checks recorded by this process so far.
///
/// Take a snapshot before and after a region to attribute checks to it.
pub fn pose_checks_total() -> u64 {
    CD_POSE_CHECKS.get()
}

/// Process-wide collision work as energy-model op classes (nodes visited
/// map to small-SRAM node reads, as in `CdStats::to_ops`). Snapshot
/// before/after a region to attribute its energy.
pub fn ops_total() -> mp_sim::OpCounter {
    mp_sim::OpCounter {
        mults: CD_MULTS.get(),
        sram_reads: CD_NODES_VISITED.get(),
        box_tests: CD_BOX_TESTS.get(),
        cd_queries: CD_POSE_CHECKS.get(),
        ..mp_sim::OpCounter::default()
    }
}

/// Process-wide dynamic collision-detection energy in picojoules.
pub fn energy_pj_total() -> f64 {
    mp_sim::energy::dynamic_energy_pj(&ops_total())
}

/// Exports the process-wide counters into a telemetry registry.
pub fn export_into(registry: &mp_telemetry::Registry) {
    registry.set_counter("collision.pose_checks_total", pose_checks_total());
    ops_total().export_into("collision.ops", registry);
    registry.set_gauge("collision.energy_pj_total", energy_pj_total());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotone() {
        let before = pose_checks_total();
        record_pose_checks(3);
        record_pose_checks(2);
        // Other tests may run concurrently and bump the counter too, so
        // assert a lower bound only.
        assert!(pose_checks_total() >= before + 5);
    }

    #[test]
    fn export_lands_in_registry() {
        record_pose_checks(1);
        let r = mp_telemetry::Registry::new();
        export_into(&r);
        assert!(r.counter_value("collision.pose_checks_total").unwrap() >= 1);
    }

    #[test]
    fn work_counters_feed_the_energy_total() {
        let before = ops_total();
        record_pose_work(10, 4, 81);
        let delta_pj = energy_pj_total() - mp_sim::energy::dynamic_energy_pj(&before);
        // Concurrent tests only ever add work, so the delta is at least
        // this call's energy.
        let just_this = mp_sim::OpCounter {
            mults: 81,
            sram_reads: 10,
            box_tests: 4,
            ..mp_sim::OpCounter::default()
        };
        assert!(delta_pj >= mp_sim::energy::dynamic_energy_pj(&just_this) - 1e-6);
    }
}
