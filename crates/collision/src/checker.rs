//! Pose-level collision checking.

use mp_geometry::cascade::CascadeConfig;
use mp_geometry::soa::HoistedCascade;
use mp_geometry::{Obb, Transform};
use mp_octree::Octree;
use mp_robot::fk::link_obbs_into;
use mp_robot::{JointConfig, RobotModel, TrigMode};

/// Counters accumulated across queries (the work metrics the paper's
/// energy model is built on).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CdStats {
    /// Robot-pose collision queries answered.
    pub pose_queries: u64,
    /// Link OBBs tested against the environment.
    pub link_tests: u64,
    /// OBB–AABB primitive intersection tests executed.
    pub box_tests: u64,
    /// Octree nodes visited.
    pub nodes_visited: u64,
    /// Multiplications spent in primitive tests.
    pub mults: u64,
}

impl CdStats {
    /// Adds another stats block into this one.
    pub fn absorb(&mut self, other: CdStats) {
        self.pose_queries += other.pose_queries;
        self.link_tests += other.link_tests;
        self.box_tests += other.box_tests;
        self.nodes_visited += other.nodes_visited;
        self.mults += other.mults;
    }

    /// Field-wise difference against an earlier snapshot of the same
    /// monotone counters — the delta-attribution primitive behind
    /// [`attributed`], the per-lane stats of `mp_planner::batch`, and the
    /// energy ledger scopes.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `before` is not an earlier snapshot
    /// (counters only grow).
    pub fn delta_since(&self, before: &CdStats) -> CdStats {
        debug_assert!(
            self.pose_queries >= before.pose_queries && self.box_tests >= before.box_tests,
            "delta_since needs an earlier snapshot of the same counters"
        );
        CdStats {
            pose_queries: self.pose_queries - before.pose_queries,
            link_tests: self.link_tests - before.link_tests,
            box_tests: self.box_tests - before.box_tests,
            nodes_visited: self.nodes_visited - before.nodes_visited,
            mults: self.mults - before.mults,
        }
    }

    /// Converts the checker counters into the energy model's op classes:
    /// each visited octree node is one small-SRAM node-store read, each
    /// primitive test carries its control overhead, and the SAT/sphere
    /// mults map directly. (The cascade's adds are not counted separately
    /// by `CdStats`; they are a ~5 % energy term next to the mults.)
    pub fn to_ops(&self) -> mp_sim::OpCounter {
        mp_sim::OpCounter {
            mults: self.mults,
            sram_reads: self.nodes_visited,
            box_tests: self.box_tests,
            cd_queries: self.pose_queries,
            ..mp_sim::OpCounter::default()
        }
    }

    /// Dynamic energy of this work, in picojoules (see [`CdStats::to_ops`]).
    pub fn energy_pj(&self) -> f64 {
        mp_sim::energy::dynamic_energy_pj(&self.to_ops())
    }

    /// Exports the counters into a telemetry registry under
    /// `<prefix>.<field>` names.
    pub fn export_into(&self, prefix: &str, registry: &mp_telemetry::Registry) {
        registry.set_counter(&format!("{prefix}.pose_queries"), self.pose_queries);
        registry.set_counter(&format!("{prefix}.link_tests"), self.link_tests);
        registry.set_counter(&format!("{prefix}.box_tests"), self.box_tests);
        registry.set_counter(&format!("{prefix}.nodes_visited"), self.nodes_visited);
        registry.set_counter(&format!("{prefix}.mults"), self.mults);
    }
}

/// Anything that can answer "does the robot collide in this pose?".
///
/// Implemented by the software oracle here and by the cycle-level CECDU
/// models in `mpaccel-core`, so planners and schedulers can run on either.
pub trait CollisionChecker {
    /// The robot being checked.
    fn robot(&self) -> &RobotModel;

    /// Returns `true` if the robot collides with the environment at `cfg`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `cfg.dof()` does not match the robot.
    fn check_pose(&mut self, cfg: &JointConfig) -> bool;

    /// Work counters accumulated so far.
    fn stats(&self) -> CdStats;

    /// Clears the work counters.
    fn reset_stats(&mut self);
}

/// Runs `f` against the checker and returns its result together with the
/// [`CdStats`] delta the call produced.
///
/// This is *the* shared snapshot/delta helper: the batch planner's
/// per-lane attribution, the per-pose telemetry span args, and the energy
/// ledger's per-scope billing all attribute work this way instead of each
/// re-implementing the before/after subtraction.
///
/// # Examples
///
/// ```
/// use mp_collision::{attributed, CollisionChecker, SoftwareChecker};
/// use mp_octree::Octree;
/// use mp_robot::RobotModel;
///
/// let mut checker = SoftwareChecker::new(RobotModel::jaco2(), Octree::build(&[], 3));
/// let home = checker.robot().home();
/// let (hit, delta) = attributed(&mut checker, |c| c.check_pose(&home));
/// assert!(!hit);
/// assert_eq!(delta.pose_queries, 1);
/// ```
pub fn attributed<C: CollisionChecker + ?Sized, T>(
    checker: &mut C,
    f: impl FnOnce(&mut C) -> T,
) -> (T, CdStats) {
    let before = checker.stats();
    let out = f(checker);
    (out, checker.stats().delta_since(&before))
}

/// The software oracle: exact `f32` kinematics + SAT-based octree queries.
#[derive(Clone, Debug)]
pub struct SoftwareChecker {
    robot: RobotModel,
    octree: Octree,
    trig: TrigMode,
    cascade: CascadeConfig,
    stats: CdStats,
    // FK buffers reused across `check_pose` calls (taken out for the
    // duration of a query so the borrow checker sees disjoint state).
    frame_buf: Vec<Transform>,
    obb_buf: Vec<Obb<f32>>,
    // Flat-octree traversal buffer, same take/restore discipline.
    stack_buf: Vec<u32>,
}

impl SoftwareChecker {
    /// Creates a checker for a robot in an environment.
    pub fn new(robot: RobotModel, octree: Octree) -> SoftwareChecker {
        SoftwareChecker {
            robot,
            octree,
            trig: TrigMode::Exact,
            cascade: CascadeConfig::proposed(),
            stats: CdStats::default(),
            frame_buf: Vec::new(),
            obb_buf: Vec::new(),
            stack_buf: Vec::new(),
        }
    }

    /// Uses the hardware's fifth-order trig approximation in FK, matching
    /// what the OBB Generation Unit computes.
    pub fn with_hardware_trig(mut self) -> SoftwareChecker {
        self.trig = TrigMode::Hardware;
        self
    }

    /// Overrides the intersection-test cascade configuration.
    pub fn with_cascade(mut self, cascade: CascadeConfig) -> SoftwareChecker {
        self.cascade = cascade;
        self
    }

    /// The environment octree.
    pub fn octree(&self) -> &Octree {
        &self.octree
    }

    /// Replaces the environment (e.g. after a scene update).
    pub fn set_octree(&mut self, octree: Octree) {
        self.octree = octree;
    }
}

impl CollisionChecker for SoftwareChecker {
    fn robot(&self) -> &RobotModel {
        &self.robot
    }

    fn check_pose(&mut self, cfg: &JointConfig) -> bool {
        assert_eq!(cfg.dof(), self.robot.dof(), "configuration DOF mismatch");
        self.stats.pose_queries += 1;
        crate::metrics::record_pose_checks(1);
        // Hot path: the sampled query span only exists under the
        // `telemetry` feature so the default build keeps this kernel free
        // of instrumentation instructions.
        #[cfg(feature = "telemetry")]
        let tele_span = mp_telemetry::sampled_span("collision", "cd_query");
        #[cfg(feature = "telemetry")]
        let tele_stats_before = self.stats;
        let mut frames = std::mem::take(&mut self.frame_buf);
        let mut obbs = std::mem::take(&mut self.obb_buf);
        let mut stack = std::mem::take(&mut self.stack_buf);
        link_obbs_into(&self.robot, cfg, self.trig, &mut frames, &mut obbs);
        let flat = self.octree.flat();
        let [cx, cy, cz, hx, hy, hz] = flat.aabbs().coord_lanes();
        let mut colliding = false;
        // Walk-local counters fold into `self.stats` once per query so the
        // inner loop keeps them in registers.
        let (mut nodes_visited, mut box_tests, mut mults) = (0u64, 0u64, 0u64);
        for obb in &obbs {
            self.stats.link_tests += 1;
            // Flat traversal with the hoisted cascade: squared radii and
            // SAT constants are computed once per link and reused across
            // every node the walk visits, with entries resolved in octant
            // order so counters match the scalar early-exit walk exactly.
            let mut cascade = HoistedCascade::new(obb, &self.cascade);
            stack.clear();
            stack.push(0u32);
            let mut hit = false;
            'walk: while let Some(addr) = stack.pop() {
                nodes_visited += 1;
                let r = flat.entries(addr);
                let (s, n) = (r.start, r.len());
                // One bounds check per lane per node instead of one per
                // entry access.
                let (bcx, bcy, bcz) = (&cx[s..s + n], &cy[s..s + n], &cz[s..s + n]);
                let (bhx, bhy, bhz) = (&hx[s..s + n], &hy[s..s + n], &hz[s..s + n]);
                for k in 0..n {
                    let out = cascade.outcome(bcx[k], bcy[k], bcz[k], bhx[k], bhy[k], bhz[k]);
                    box_tests += 1;
                    mults += out.mults as u64;
                    if out.colliding {
                        let e = s + k;
                        if flat.is_full(e) {
                            hit = true;
                            break 'walk;
                        }
                        stack.push(flat.child(e));
                    }
                }
            }
            if hit {
                // Early exit: subsequent links are not checked (§7.2.2).
                colliding = true;
                break;
            }
        }
        self.stats.nodes_visited += nodes_visited;
        self.stats.box_tests += box_tests;
        self.stats.mults += mults;
        crate::metrics::record_pose_work(nodes_visited, box_tests, mults);
        self.frame_buf = frames;
        self.obb_buf = obbs;
        self.stack_buf = stack;
        #[cfg(feature = "telemetry")]
        {
            let box_tests = self.stats.delta_since(&tele_stats_before).box_tests;
            tele_span.end_with(|| {
                mp_telemetry::arg2(
                    "colliding",
                    mp_telemetry::ArgValue::U64(colliding as u64),
                    "box_tests",
                    mp_telemetry::ArgValue::U64(box_tests),
                )
            });
        }
        colliding
    }

    fn stats(&self) -> CdStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = CdStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_geometry::{Aabb, Vec3};
    use mp_octree::{Octree, Scene, SceneConfig};
    use mp_robot::fk::end_effector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empty_env() -> Octree {
        Octree::build(&[], 4)
    }

    #[test]
    fn empty_environment_is_always_free() {
        let mut c = SoftwareChecker::new(RobotModel::baxter(), empty_env());
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..20 {
            let cfg = c.robot().sample_config(&mut rng);
            assert!(!c.check_pose(&cfg));
        }
        assert_eq!(c.stats().pose_queries, 20);
        assert_eq!(c.stats().link_tests, 20 * 7); // no early exits
    }

    #[test]
    fn obstacle_on_the_arm_is_detected() {
        let robot = RobotModel::jaco2();
        // Place an obstacle right on the home-pose end effector.
        let ee = end_effector(&robot, &robot.home());
        let env = Octree::build(&[Aabb::new(ee, Vec3::splat(0.08))], 5);
        let mut c = SoftwareChecker::new(robot, env);
        let home = c.robot().home();
        assert!(c.check_pose(&home));
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let scene = Scene::random(SceneConfig::paper(), 1);
        let mut c = SoftwareChecker::new(RobotModel::jaco2(), scene.octree());
        let home = c.robot().home();
        let _ = c.check_pose(&home);
        let s1 = c.stats();
        assert_eq!(s1.pose_queries, 1);
        assert!(s1.box_tests >= 1 || s1.nodes_visited >= 7);
        let _ = c.check_pose(&home);
        assert_eq!(c.stats().pose_queries, 2);
        c.reset_stats();
        assert_eq!(c.stats(), CdStats::default());
    }

    #[test]
    fn hardware_trig_checker_agrees_away_from_boundaries() {
        let scene = Scene::random(SceneConfig::paper(), 3);
        let mut exact = SoftwareChecker::new(RobotModel::baxter(), scene.octree());
        let mut hw =
            SoftwareChecker::new(RobotModel::baxter(), scene.octree()).with_hardware_trig();
        let mut rng = StdRng::seed_from_u64(17);
        let mut disagreements = 0;
        for _ in 0..100 {
            let cfg = exact.robot().sample_config(&mut rng);
            if exact.check_pose(&cfg) != hw.check_pose(&cfg) {
                disagreements += 1;
            }
        }
        // Tiny FK perturbations can flip razor-edge poses only.
        assert!(disagreements <= 2, "{disagreements} disagreements");
    }

    #[test]
    #[should_panic(expected = "DOF mismatch")]
    fn wrong_dof_rejected() {
        let mut c = SoftwareChecker::new(RobotModel::jaco2(), empty_env());
        let _ = c.check_pose(&JointConfig::zeros(7));
    }

    #[test]
    fn absorb_combines_stats() {
        let mut a = CdStats {
            pose_queries: 1,
            link_tests: 2,
            box_tests: 3,
            nodes_visited: 4,
            mults: 5,
        };
        a.absorb(a);
        assert_eq!(a.pose_queries, 2);
        assert_eq!(a.mults, 10);
    }

    #[test]
    fn attributed_reports_exactly_the_closure_delta() {
        let scene = Scene::random(SceneConfig::paper(), 2);
        let mut c = SoftwareChecker::new(RobotModel::jaco2(), scene.octree());
        let home = c.robot().home();
        // Pre-existing work must not leak into the delta.
        let _ = c.check_pose(&home);
        let before = c.stats();
        let (_, delta) = attributed(&mut c, |c| {
            let _ = c.check_pose(&home);
            let _ = c.check_pose(&home);
        });
        assert_eq!(delta.pose_queries, 2);
        assert_eq!(c.stats().delta_since(&before), delta);
        let mut whole = before;
        whole.absorb(delta);
        assert_eq!(whole, c.stats());
    }

    #[test]
    fn ops_conversion_prices_every_counted_class() {
        let s = CdStats {
            pose_queries: 2,
            link_tests: 9,
            box_tests: 30,
            nodes_visited: 12,
            mults: 100,
        };
        let ops = s.to_ops();
        assert_eq!(ops.cd_queries, 2);
        assert_eq!(ops.box_tests, 30);
        assert_eq!(ops.sram_reads, 12);
        assert_eq!(ops.mults, 100);
        assert_eq!(s.energy_pj(), mp_sim::energy::dynamic_energy_pj(&ops));
        assert!(s.energy_pj() > 100.0);
    }
}
