//! Motion-level collision checking (sequential reference semantics).

use mp_robot::{JointConfig, Motion};

use crate::checker::CollisionChecker;

/// Default C-space discretization step (radians of the worst joint between
/// consecutive poses). With Baxter-scale motions this yields tens to
/// hundreds of poses per motion, matching the ">1000 poses per motion
/// planning query" workload of §4.
pub const DEFAULT_CSPACE_STEP: f32 = 0.04;

/// Result of checking one motion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MotionResult {
    /// Whether any pose along the motion collides.
    pub colliding: bool,
    /// Index of the first colliding pose in sequential order, if any.
    pub first_hit: Option<usize>,
    /// Poses actually checked (sequential evaluation stops at the first
    /// hit — the work-efficiency baseline of §3).
    pub poses_checked: usize,
    /// Total poses the motion discretizes into.
    pub pose_count: usize,
}

/// Sequentially checks the discrete poses of a motion, stopping at the
/// first collision (the serial baseline whose work efficiency parallel
/// schedulers are measured against, §3).
///
/// # Panics
///
/// Panics if `step` is not positive or the motion's DOF does not match the
/// checker's robot.
pub fn check_motion(
    checker: &mut impl CollisionChecker,
    motion: &Motion,
    step: f32,
) -> MotionResult {
    let n = motion.pose_count(step);
    for i in 0..n {
        let pose = motion.pose(i, n);
        if checker.check_pose(&pose) {
            return MotionResult {
                colliding: true,
                first_hit: Some(i),
                poses_checked: i + 1,
                pose_count: n,
            };
        }
    }
    MotionResult {
        colliding: false,
        first_hit: None,
        poses_checked: n,
        pose_count: n,
    }
}

/// Width of the validation rake: how many interpolated poses each block
/// of rake-style motion validation covers. Matches the SoA kernel lane
/// count so one rake block is one kernel-sized unit of work.
pub const RAKE_WIDTH: usize = 8;

/// Rake-style motion validation: poses are interpolated a fixed-width
/// block at a time into reusable lanes, then resolved in sequential order
/// with early exit on the first colliding lane.
///
/// The rake changes the *schedule* of interpolation — block-at-a-time
/// into scratch lanes instead of one freshly allocated pose per step —
/// not which poses are checked or in what order they are resolved, so the
/// [`MotionResult`] and every [`crate::CdStats`] counter are bit-identical
/// to [`check_motion`]. This is the unit of work the cross-query batch
/// engine streams per scene.
#[derive(Clone, Debug, Default)]
pub struct RakeValidator {
    lanes: Vec<JointConfig>,
}

impl RakeValidator {
    /// Creates a validator with empty scratch lanes.
    pub fn new() -> RakeValidator {
        RakeValidator::default()
    }

    /// Checks a motion rake-style. Semantics (result and work counters)
    /// are identical to [`check_motion`].
    ///
    /// # Panics
    ///
    /// Panics if `step` is not positive or the motion's DOF does not match
    /// the checker's robot.
    pub fn check_motion(
        &mut self,
        checker: &mut impl CollisionChecker,
        motion: &Motion,
        step: f32,
    ) -> MotionResult {
        let n = motion.pose_count(step);
        self.lanes.resize_with(RAKE_WIDTH, || JointConfig::zeros(0));
        let mut base = 0;
        while base < n {
            let width = RAKE_WIDTH.min(n - base);
            for (lane, slot) in self.lanes[..width].iter_mut().enumerate() {
                motion.pose_into(base + lane, n, slot);
            }
            for lane in 0..width {
                if checker.check_pose(&self.lanes[lane]) {
                    return MotionResult {
                        colliding: true,
                        first_hit: Some(base + lane),
                        poses_checked: base + lane + 1,
                        pose_count: n,
                    };
                }
            }
            base += width;
        }
        MotionResult {
            colliding: false,
            first_hit: None,
            poses_checked: n,
            pose_count: n,
        }
    }
}

/// Checks every consecutive segment of a path ("feasibility checking",
/// §2.1/Fig 3). Returns the index of the first infeasible segment, if any.
///
/// # Panics
///
/// Panics if the path has fewer than 2 waypoints.
pub fn check_path(
    checker: &mut impl CollisionChecker,
    waypoints: &[JointConfig],
    step: f32,
) -> Option<usize> {
    assert!(waypoints.len() >= 2, "a path needs at least 2 waypoints");
    for (i, w) in waypoints.windows(2).enumerate() {
        let m = Motion::new(w[0].clone(), w[1].clone());
        if check_motion(checker, &m, step).colliding {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{CollisionChecker, SoftwareChecker};
    use mp_geometry::{Aabb, Vec3};
    use mp_octree::Octree;
    use mp_robot::fk::end_effector;
    use mp_robot::RobotModel;

    /// A planar arm sweeping through an obstacle placed on its path.
    fn planar_fixture() -> (SoftwareChecker, Motion) {
        let robot = RobotModel::planar_2dof();
        // At (j0=0.9, j1=0) the end effector sits at 0.8*(cos .9, sin .9).
        let block_at = end_effector(&robot, &JointConfig::new(vec![0.9, 0.0]));
        let env = Octree::build(&[Aabb::new(block_at, Vec3::splat(0.06))], 5);
        let checker = SoftwareChecker::new(robot, env);
        let motion = Motion::new(
            JointConfig::new(vec![0.0, 0.0]),
            JointConfig::new(vec![1.8, 0.0]),
        );
        (checker, motion)
    }

    #[test]
    fn sweep_through_obstacle_detected_with_correct_first_hit() {
        let (mut checker, motion) = planar_fixture();
        let r = check_motion(&mut checker, &motion, 0.05);
        assert!(r.colliding);
        let hit = r.first_hit.unwrap();
        // The obstacle sits at j0 ≈ 0.9 of a 0→1.8 sweep: roughly midway.
        let frac = hit as f32 / (r.pose_count - 1) as f32;
        assert!((0.25..=0.75).contains(&frac), "hit fraction {frac}");
        // Sequential semantics: checked exactly first_hit + 1 poses.
        assert_eq!(r.poses_checked, hit + 1);
        assert_eq!(checker.stats().pose_queries as usize, r.poses_checked);
    }

    #[test]
    fn free_motion_checks_every_pose() {
        let robot = RobotModel::planar_2dof();
        let env = Octree::build(&[], 4);
        let mut checker = SoftwareChecker::new(robot, env);
        let motion = Motion::new(
            JointConfig::new(vec![0.0, 0.0]),
            JointConfig::new(vec![1.0, 1.0]),
        );
        let r = check_motion(&mut checker, &motion, 0.1);
        assert!(!r.colliding);
        assert_eq!(r.first_hit, None);
        assert_eq!(r.poses_checked, r.pose_count);
    }

    #[test]
    fn path_reports_first_bad_segment() {
        let (mut checker, motion) = planar_fixture();
        // Segment 0 is short and free; segment 1 sweeps into the obstacle.
        let path = vec![
            JointConfig::new(vec![0.0, 0.0]),
            JointConfig::new(vec![0.2, 0.0]),
            motion.to.clone(),
        ];
        assert_eq!(check_path(&mut checker, &path, 0.05), Some(1));
        // A path avoiding the obstacle (swing the elbow) is feasible.
        let detour = vec![
            JointConfig::new(vec![0.0, 0.0]),
            JointConfig::new(vec![0.0, -2.2]),
        ];
        assert_eq!(check_path(&mut checker, &detour, 0.05), None);
    }

    #[test]
    fn rake_matches_sequential_result_and_stats() {
        // Colliding sweep: identical MotionResult AND identical counters.
        let (mut seq, motion) = planar_fixture();
        let (mut rake_chk, _) = planar_fixture();
        let mut rake = RakeValidator::new();
        let a = check_motion(&mut seq, &motion, 0.05);
        let b = rake.check_motion(&mut rake_chk, &motion, 0.05);
        assert_eq!(a, b);
        assert_eq!(seq.stats(), rake_chk.stats());

        // Free motion spanning several rake blocks.
        let robot = RobotModel::planar_2dof();
        let env = Octree::build(&[], 4);
        let mut seq = SoftwareChecker::new(robot.clone(), env.clone());
        let mut rake_chk = SoftwareChecker::new(robot, env);
        let m = Motion::new(
            JointConfig::new(vec![0.0, 0.0]),
            JointConfig::new(vec![1.3, -0.7]),
        );
        let a = check_motion(&mut seq, &m, 0.04);
        let b = rake.check_motion(&mut rake_chk, &m, 0.04);
        assert_eq!(a, b);
        assert!(a.pose_count > RAKE_WIDTH);
        assert_eq!(seq.stats(), rake_chk.stats());
    }

    #[test]
    #[should_panic(expected = "at least 2 waypoints")]
    fn degenerate_path_rejected() {
        let (mut checker, _) = planar_fixture();
        let _ = check_path(&mut checker, &[JointConfig::zeros(2)], 0.05);
    }
}
