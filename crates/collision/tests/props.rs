//! Property-based tests of the software collision oracle.

use mp_collision::{check_motion, CollisionChecker, SoftwareChecker};
use mp_geometry::{Aabb, AabbF, Vec3};
use mp_octree::Octree;
use mp_robot::{JointConfig, Motion, RobotModel};
use proptest::prelude::*;

fn any_obstacles() -> impl Strategy<Value = Vec<AabbF>> {
    prop::collection::vec(
        (
            -0.7f32..0.7,
            -0.7f32..0.7,
            -0.7f32..0.7,
            0.03f32..0.12,
            0.03f32..0.12,
            0.03f32..0.12,
        )
            .prop_map(|(x, y, z, a, b, c)| Aabb::new(Vec3::new(x, y, z), Vec3::new(a, b, c))),
        0..7,
    )
}

fn any_pose() -> impl Strategy<Value = JointConfig> {
    prop::collection::vec(-2.8f32..2.8, 6).prop_map(JointConfig::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Adding obstacles can only add collisions, never remove them.
    #[test]
    fn obstacles_are_monotone(obstacles in any_obstacles(), extra in any_obstacles(), pose in any_pose()) {
        let robot = RobotModel::jaco2();
        let mut small = SoftwareChecker::new(robot.clone(), Octree::build(&obstacles, 4));
        let mut all = obstacles.clone();
        all.extend(extra);
        let mut big = SoftwareChecker::new(robot, Octree::build(&all, 4));
        if small.check_pose(&pose) {
            prop_assert!(big.check_pose(&pose), "adding obstacles removed a collision");
        }
    }

    /// Inflating every obstacle preserves collisions.
    #[test]
    fn inflation_is_monotone(obstacles in any_obstacles(), pose in any_pose(), grow in 1.0f32..1.5) {
        let robot = RobotModel::jaco2();
        let mut base = SoftwareChecker::new(robot.clone(), Octree::build(&obstacles, 4));
        let inflated: Vec<AabbF> = obstacles
            .iter()
            .map(|o| Aabb::new(o.center, o.half * grow))
            .collect();
        let mut fat = SoftwareChecker::new(robot, Octree::build(&inflated, 4));
        if base.check_pose(&pose) {
            prop_assert!(fat.check_pose(&pose));
        }
    }

    /// An empty environment never collides, and the checker's stats add up.
    #[test]
    fn empty_env_is_free(pose in any_pose()) {
        let robot = RobotModel::jaco2();
        let mut c = SoftwareChecker::new(robot, Octree::build(&[], 3));
        prop_assert!(!c.check_pose(&pose));
        prop_assert_eq!(c.stats().pose_queries, 1);
        prop_assert_eq!(c.stats().link_tests, 7); // all links, no early exit
    }

    /// Motion checking with a finer step never misses a collision that a
    /// coarser step finds (pose supersets).
    #[test]
    fn finer_steps_see_more(obstacles in any_obstacles(), a in any_pose(), b in any_pose()) {
        let robot = RobotModel::jaco2();
        let tree = Octree::build(&obstacles, 4);
        let m = Motion::new(a, b);
        let coarse = check_motion(
            &mut SoftwareChecker::new(robot.clone(), tree.clone()),
            &m,
            0.2,
        );
        // A step that divides the coarse one visits a superset of poses.
        let fine = check_motion(&mut SoftwareChecker::new(robot, tree), &m, 0.05);
        if coarse.colliding {
            // The colliding coarse pose is not necessarily on the fine
            // grid, but the fine grid brackets it within one coarse step;
            // with convex obstacles and short steps this almost always
            // holds — assert the direction only when the coarse hit is at
            // an endpoint (guaranteed shared).
            if coarse.first_hit == Some(0) || coarse.first_hit == Some(coarse.pose_count - 1) {
                prop_assert!(fine.colliding);
            }
        }
    }

    /// Energy-ledger conservation through the f32 oracle chain: billing
    /// each pose's counter delta to a scope loses nothing, however the
    /// poses are partitioned — the scope counters sum field-by-field to
    /// the whole-run delta, so the priced energy matches bit-for-bit.
    #[test]
    fn ledger_conserves_the_f32_chain(
        obstacles in any_obstacles(),
        poses in prop::collection::vec(any_pose(), 1..12),
        stripe in 1usize..4,
    ) {
        let robot = RobotModel::jaco2();
        let mut c = SoftwareChecker::new(robot, Octree::build(&obstacles, 4));
        let before = c.stats();
        let mut ledger = mp_sim::EnergyLedger::new();
        let scopes = ["fk", "traversal", "sat"];
        for (i, pose) in poses.iter().enumerate() {
            let (_, work) = mp_collision::attributed(&mut c, |c| c.check_pose(pose));
            ledger.bill(scopes[(i / stripe) % scopes.len()], work.to_ops());
        }
        let whole = c.stats().delta_since(&before).to_ops();
        prop_assert_eq!(ledger.total_ops(), whole);
        prop_assert_eq!(
            ledger.total_energy_pj(),
            mp_sim::energy::dynamic_energy_pj(&whole),
            "ledger total must price identically to the whole-run counter"
        );
        // Per-scope energies sum to the total up to f64 rounding.
        let scope_sum: f64 = ledger
            .iter()
            .map(|(_, ops)| mp_sim::energy::dynamic_energy_pj(ops))
            .sum();
        let total = ledger.total_energy_pj();
        prop_assert!((scope_sum - total).abs() <= 1e-9 * total.max(1.0));
    }

    /// The checker is a pure function of (pose, environment).
    #[test]
    fn checker_is_deterministic(obstacles in any_obstacles(), pose in any_pose()) {
        let robot = RobotModel::jaco2();
        let tree = Octree::build(&obstacles, 4);
        let mut a = SoftwareChecker::new(robot.clone(), tree.clone());
        let mut b = SoftwareChecker::new(robot, tree);
        prop_assert_eq!(a.check_pose(&pose), b.check_pose(&pose));
        prop_assert_eq!(a.stats(), b.stats());
    }
}
