//! Classical sampling-based planners: RRT and RRT-Connect.
//!
//! These are the "traditional sampling-based motion planning algorithms"
//! MPNet is compared against (§1: "MPNet has shown 15× speedup on CPU and
//! 40% improvement in the path quality compared to the traditional
//! sampling-based motion planning algorithms"). They serve as workload
//! baselines: far more collision-detection queries per solved query.

use mp_collision::{check_motion, CollisionChecker};
use mp_robot::{JointConfig, Motion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// RRT parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RrtConfig {
    /// Maximum tree nodes before giving up.
    pub max_nodes: usize,
    /// Steering step (C-space L2 radians).
    pub steer_step: f32,
    /// Probability of sampling the goal directly (goal bias).
    pub goal_bias: f32,
    /// C-space discretization for edge checking.
    pub cspace_step: f32,
    /// Collision-detection query budget for this run (`None` = only the
    /// node cap applies). Lets a degraded planner hand RRT whatever
    /// budget remains after a failed MPNet attempt.
    pub max_cd_queries: Option<u64>,
}

impl Default for RrtConfig {
    fn default() -> RrtConfig {
        RrtConfig {
            max_nodes: 2000,
            steer_step: 0.5,
            goal_bias: 0.1,
            cspace_step: 0.04,
            max_cd_queries: None,
        }
    }
}

/// Result of a classical planning run.
#[derive(Clone, Debug)]
pub struct RrtOutcome {
    /// The path, if found.
    pub path: Option<Vec<JointConfig>>,
    /// Tree nodes expanded.
    pub nodes: usize,
    /// CD pose queries executed.
    pub cd_queries: u64,
}

impl RrtOutcome {
    /// Whether a path was found.
    pub fn solved(&self) -> bool {
        self.path.is_some()
    }
}

/// Nearest-neighbour block width: 8 × f32, matching the geometry crate's
/// lane-blocked kernels (one AVX register).
const NN_LANES: usize = 8;

/// A growing RRT tree in joint-major SoA layout, with an 8-lane blocked
/// nearest-neighbour scan (the planner-side hot loop).
pub struct Tree {
    nodes: Vec<JointConfig>,
    parents: Vec<usize>,
    /// Joint-major copy of `nodes` (`lanes[j][i]` = joint `j` of node
    /// `i`): the nearest-neighbour scan is the planner-side hot loop, and
    /// the transposed layout lets it sweep eight nodes per step as packed
    /// lanes instead of chasing a heap allocation per node.
    lanes: Vec<Vec<f32>>,
}

impl Tree {
    /// A tree containing only `root` (parent-linked to itself).
    pub fn new(root: JointConfig) -> Tree {
        let mut t = Tree {
            nodes: Vec::new(),
            parents: Vec::new(),
            lanes: vec![Vec::new(); root.dof()],
        };
        t.push(root, 0);
        t
    }

    /// Appends node `q` with parent index `parent`.
    ///
    /// # Panics
    ///
    /// May panic (debug) if `q`'s DOF mismatches the root's.
    pub fn push(&mut self, q: JointConfig, parent: usize) {
        debug_assert_eq!(q.dof(), self.lanes.len(), "DOF mismatch in tree push");
        for (lane, &v) in self.lanes.iter_mut().zip(q.as_slice()) {
            lane.push(v);
        }
        self.nodes.push(q);
        self.parents.push(parent);
    }

    /// Node count.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// The configuration at node `i`.
    pub fn node(&self, i: usize) -> &JointConfig {
        &self.nodes[i]
    }

    /// Index of the node nearest to `q` (C-space L2), scanning eight
    /// nodes per step over the joint-major lanes. Bit-identical to the
    /// naive per-node scan: the blocked accumulation follows the same
    /// per-node summation order, and the sqrt gate only skips nodes whose
    /// squared distance already lost.
    pub fn nearest(&self, q: &JointConfig) -> usize {
        let qs = q.as_slice();
        assert_eq!(self.lanes.len(), qs.len(), "DOF mismatch in distance");
        let mut best = 0;
        let mut best_d = f32::INFINITY;
        let mut best_acc = f32::INFINITY;
        // Bit-identity with the naive per-node `JointConfig::distance`
        // scan: each node's squared sum accumulates in joint order (the
        // blocking is across nodes, never within one node's sum),
        // candidates resolve in index order, and sqrt is monotone
        // non-decreasing — a sum at or above the incumbent's can never
        // win the `d < best_d` compare, so only strictly smaller sums
        // take the sqrt, where rounding ties resolve exactly as the
        // unguarded compare would. Ties therefore break to the same
        // index as the naive scan.
        let mut resolve = |i: usize, acc: f32| {
            if acc < best_acc {
                let d = acc.sqrt();
                if d < best_d {
                    best_d = d;
                    best_acc = acc;
                    best = i;
                }
            }
        };
        let n_nodes = self.nodes.len();
        let mut i = 0;
        while i + NN_LANES <= n_nodes {
            let mut acc = [0.0f32; NN_LANES];
            for (lane, &q) in self.lanes.iter().zip(qs) {
                let block = &lane[i..i + NN_LANES];
                for k in 0..NN_LANES {
                    let d = block[k] - q;
                    acc[k] += d * d;
                }
            }
            for (k, &a) in acc.iter().enumerate() {
                resolve(i + k, a);
            }
            i += NN_LANES;
        }
        while i < n_nodes {
            let acc = self
                .lanes
                .iter()
                .zip(qs)
                .map(|(lane, &q)| (lane[i] - q) * (lane[i] - q))
                .sum::<f32>();
            resolve(i, acc);
            i += 1;
        }
        best
    }

    /// The path from node `i` back to the root, returned root-first.
    pub fn path_to_root(&self, mut i: usize) -> Vec<JointConfig> {
        let mut out = vec![self.nodes[i].clone()];
        while self.parents[i] != i {
            i = self.parents[i];
            out.push(self.nodes[i].clone());
        }
        out.reverse();
        out
    }
}

pub(crate) fn steer(from: &JointConfig, to: &JointConfig, step: f32) -> JointConfig {
    let d = from.distance(to);
    if d <= step {
        to.clone()
    } else {
        from.lerp(to, step / d)
    }
}

fn out_of_budget(checker: &impl CollisionChecker, cd_before: u64, cfg: &RrtConfig) -> bool {
    cfg.max_cd_queries
        .is_some_and(|cap| checker.stats().pose_queries - cd_before >= cap)
}

/// Plain RRT with goal bias.
///
/// # Panics
///
/// Panics if start/goal DOF mismatch the robot.
pub fn rrt(
    checker: &mut impl CollisionChecker,
    start: &JointConfig,
    goal: &JointConfig,
    cfg: &RrtConfig,
    seed: u64,
) -> RrtOutcome {
    let robot = checker.robot().clone();
    let mut rng = StdRng::seed_from_u64(seed);
    let cd_before = checker.stats().pose_queries;
    if checker.check_pose(start) || checker.check_pose(goal) {
        return RrtOutcome {
            path: None,
            nodes: 0,
            cd_queries: checker.stats().pose_queries - cd_before,
        };
    }
    let mut tree = Tree::new(start.clone());
    while tree.len() < cfg.max_nodes && !out_of_budget(checker, cd_before, cfg) {
        let target = if rng.gen::<f32>() < cfg.goal_bias {
            goal.clone()
        } else {
            robot.sample_config(&mut rng)
        };
        let near = tree.nearest(&target);
        let new = steer(tree.node(near), &target, cfg.steer_step);
        let edge = Motion::new(tree.node(near).clone(), new.clone());
        if check_motion(checker, &edge, cfg.cspace_step).colliding {
            continue;
        }
        tree.push(new.clone(), near);
        // Goal connection attempt.
        let to_goal = Motion::new(new.clone(), goal.clone());
        if new.distance(goal) <= cfg.steer_step
            && !check_motion(checker, &to_goal, cfg.cspace_step).colliding
        {
            let mut path = tree.path_to_root(tree.len() - 1);
            path.push(goal.clone());
            return RrtOutcome {
                path: Some(path),
                nodes: tree.len(),
                cd_queries: checker.stats().pose_queries - cd_before,
            };
        }
    }
    RrtOutcome {
        path: None,
        nodes: tree.len(),
        cd_queries: checker.stats().pose_queries - cd_before,
    }
}

/// RRT-Connect: two trees grown toward each other with a greedy connect
/// heuristic. Usually far fewer samples than plain RRT.
///
/// # Panics
///
/// Panics if start/goal DOF mismatch the robot.
pub fn rrt_connect(
    checker: &mut impl CollisionChecker,
    start: &JointConfig,
    goal: &JointConfig,
    cfg: &RrtConfig,
    seed: u64,
) -> RrtOutcome {
    let _span = mp_telemetry::span("planner", "rrt_connect");
    let robot = checker.robot().clone();
    let mut rng = StdRng::seed_from_u64(seed);
    let cd_before = checker.stats().pose_queries;
    if checker.check_pose(start) || checker.check_pose(goal) {
        return RrtOutcome {
            path: None,
            nodes: 0,
            cd_queries: checker.stats().pose_queries - cd_before,
        };
    }
    let mut ta = Tree::new(start.clone());
    let mut tb = Tree::new(goal.clone());
    let mut a_is_start = true;

    while ta.len() + tb.len() < cfg.max_nodes && !out_of_budget(checker, cd_before, cfg) {
        let target = robot.sample_config(&mut rng);
        // Extend tree A toward the sample.
        let near_a = ta.nearest(&target);
        let new_a = steer(ta.node(near_a), &target, cfg.steer_step);
        let edge = Motion::new(ta.node(near_a).clone(), new_a.clone());
        if !check_motion(checker, &edge, cfg.cspace_step).colliding {
            ta.push(new_a.clone(), near_a);
            // Greedily connect tree B toward the new node.
            loop {
                if out_of_budget(checker, cd_before, cfg) {
                    break;
                }
                let near_b = tb.nearest(&new_a);
                let step_b = steer(tb.node(near_b), &new_a, cfg.steer_step);
                let edge_b = Motion::new(tb.node(near_b).clone(), step_b.clone());
                if check_motion(checker, &edge_b, cfg.cspace_step).colliding {
                    break;
                }
                tb.push(step_b.clone(), near_b);
                if step_b.distance(&new_a) < 1e-4 {
                    // Trees met: assemble the path.
                    let pa = ta.path_to_root(ta.len() - 1);
                    let pb = tb.path_to_root(tb.len() - 1);
                    let mut path = if a_is_start { pa.clone() } else { pb.clone() };
                    let mut tail = if a_is_start { pb } else { pa };
                    tail.reverse();
                    path.extend(tail);
                    dedup(&mut path);
                    return RrtOutcome {
                        path: Some(path),
                        nodes: ta.len() + tb.len(),
                        cd_queries: checker.stats().pose_queries - cd_before,
                    };
                }
            }
        }
        std::mem::swap(&mut ta, &mut tb);
        a_is_start = !a_is_start;
    }
    RrtOutcome {
        path: None,
        nodes: ta.len() + tb.len(),
        cd_queries: checker.stats().pose_queries - cd_before,
    }
}

pub(crate) fn dedup(path: &mut Vec<JointConfig>) {
    path.dedup_by(|a, b| a.distance(b) < 1e-6);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_collision::{check_path, SoftwareChecker};
    use mp_octree::{Octree, Scene, SceneConfig};
    use mp_robot::RobotModel;

    fn goal_for(robot: &RobotModel) -> JointConfig {
        let mut g = robot.home();
        g.as_mut_slice()[0] += 1.5;
        robot.clamp_config(&g)
    }

    #[test]
    fn rrt_solves_free_space() {
        let robot = RobotModel::planar_2dof();
        let mut checker = SoftwareChecker::new(robot.clone(), Octree::build(&[], 3));
        let out = rrt(
            &mut checker,
            &JointConfig::zeros(2),
            &JointConfig::new(vec![1.5, -0.5]),
            &RrtConfig::default(),
            1,
        );
        assert!(out.solved());
        let path = out.path.unwrap();
        assert_eq!(path.first().unwrap(), &JointConfig::zeros(2));
        assert!(
            path.last()
                .unwrap()
                .distance(&JointConfig::new(vec![1.5, -0.5]))
                < 1e-5
        );
    }

    #[test]
    fn rrt_connect_solves_benchmark_scenes_with_valid_paths() {
        let robot = RobotModel::jaco2();
        let mut solved = 0;
        let mut total = 0;
        for seed in 0..4 {
            let scene = Scene::random(SceneConfig::paper(), seed);
            for q in crate::queries::generate_queries(&robot, &scene, 2, seed + 60)
                .expect("paper scenes yield valid queries")
            {
                total += 1;
                let mut checker = SoftwareChecker::new(robot.clone(), scene.octree());
                let out = rrt_connect(
                    &mut checker,
                    &q.start,
                    &q.goal,
                    &RrtConfig::default(),
                    seed + 5,
                );
                if let Some(path) = &out.path {
                    solved += 1;
                    let mut verifier = SoftwareChecker::new(robot.clone(), scene.octree());
                    assert_eq!(check_path(&mut verifier, path, 0.04), None);
                }
            }
        }
        assert!(solved * 3 >= total * 2, "only {solved}/{total} solved");
    }

    #[test]
    fn rrt_gives_up_when_goal_unreachable() {
        let robot = RobotModel::planar_2dof();
        // Goal pose is inside an obstacle.
        let goal = JointConfig::new(vec![1.0, 0.0]);
        let ee = mp_robot::fk::end_effector(&robot, &goal);
        let tree = Octree::build(
            &[mp_geometry::Aabb::new(ee, mp_geometry::Vec3::splat(0.05))],
            5,
        );
        let mut checker = SoftwareChecker::new(robot.clone(), tree);
        let out = rrt(
            &mut checker,
            &JointConfig::zeros(2),
            &goal,
            &RrtConfig {
                max_nodes: 200,
                ..RrtConfig::default()
            },
            3,
        );
        assert!(!out.solved());
    }

    #[test]
    fn cd_budget_caps_the_search() {
        let robot = RobotModel::planar_2dof();
        // Goal pose inside an obstacle: unsolvable, so only the budget
        // (not success) can end the run early.
        let goal = JointConfig::new(vec![1.0, 0.0]);
        let ee = mp_robot::fk::end_effector(&robot, &goal);
        let tree = Octree::build(
            &[mp_geometry::Aabb::new(ee, mp_geometry::Vec3::splat(0.05))],
            5,
        );
        let cfg = RrtConfig {
            max_cd_queries: Some(150),
            ..RrtConfig::default()
        };
        let mut c1 = SoftwareChecker::new(robot.clone(), tree.clone());
        let a = rrt(&mut c1, &JointConfig::zeros(2), &goal, &cfg, 3);
        let mut c2 = SoftwareChecker::new(robot.clone(), tree.clone());
        let b = rrt_connect(&mut c2, &JointConfig::zeros(2), &goal, &cfg, 4);
        for out in [a, b] {
            assert!(!out.solved());
            // The cap is checked between edges, so one in-flight edge of
            // slack is allowed.
            assert!(
                out.cd_queries < 150 + 100,
                "spent {} queries",
                out.cd_queries
            );
        }
    }

    #[test]
    fn classical_planners_spend_more_cd_than_neural() {
        use crate::mpnet::{plan, MpnetConfig};
        use crate::sampler::OracleSampler;
        let robot = RobotModel::jaco2();
        let scene = Scene::random(SceneConfig::paper(), 2);
        let goal = goal_for(&robot);

        let mut c1 = SoftwareChecker::new(robot.clone(), scene.octree());
        let mut sampler = OracleSampler::new(robot.clone(), 4);
        let neural = plan(
            &mut c1,
            &mut sampler,
            &robot.home(),
            &goal,
            &MpnetConfig::default(),
        );

        let mut c2 = SoftwareChecker::new(robot.clone(), scene.octree());
        let classical = rrt(&mut c2, &robot.home(), &goal, &RrtConfig::default(), 4);

        if neural.solved() && classical.solved() {
            assert!(
                classical.cd_queries > neural.stats.cd_queries,
                "RRT {} vs MPNet {}",
                classical.cd_queries,
                neural.stats.cd_queries
            );
        }
    }
}
