//! Classical sampling-based planners: RRT and RRT-Connect.
//!
//! These are the "traditional sampling-based motion planning algorithms"
//! MPNet is compared against (§1: "MPNet has shown 15× speedup on CPU and
//! 40% improvement in the path quality compared to the traditional
//! sampling-based motion planning algorithms"). They serve as workload
//! baselines: far more collision-detection queries per solved query.

use mp_collision::{check_motion, CollisionChecker};
use mp_robot::{JointConfig, Motion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// RRT parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RrtConfig {
    /// Maximum tree nodes before giving up.
    pub max_nodes: usize,
    /// Steering step (C-space L2 radians).
    pub steer_step: f32,
    /// Probability of sampling the goal directly (goal bias).
    pub goal_bias: f32,
    /// C-space discretization for edge checking.
    pub cspace_step: f32,
    /// Collision-detection query budget for this run (`None` = only the
    /// node cap applies). Lets a degraded planner hand RRT whatever
    /// budget remains after a failed MPNet attempt.
    pub max_cd_queries: Option<u64>,
}

impl Default for RrtConfig {
    fn default() -> RrtConfig {
        RrtConfig {
            max_nodes: 2000,
            steer_step: 0.5,
            goal_bias: 0.1,
            cspace_step: 0.04,
            max_cd_queries: None,
        }
    }
}

/// Result of a classical planning run.
#[derive(Clone, Debug)]
pub struct RrtOutcome {
    /// The path, if found.
    pub path: Option<Vec<JointConfig>>,
    /// Tree nodes expanded.
    pub nodes: usize,
    /// CD pose queries executed.
    pub cd_queries: u64,
}

impl RrtOutcome {
    /// Whether a path was found.
    pub fn solved(&self) -> bool {
        self.path.is_some()
    }
}

struct Tree {
    nodes: Vec<JointConfig>,
    parents: Vec<usize>,
}

impl Tree {
    fn new(root: JointConfig) -> Tree {
        Tree {
            nodes: vec![root],
            parents: vec![0],
        }
    }

    fn nearest(&self, q: &JointConfig) -> usize {
        let mut best = 0;
        let mut best_d = f32::INFINITY;
        for (i, n) in self.nodes.iter().enumerate() {
            let d = n.distance(q);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    fn path_to_root(&self, mut i: usize) -> Vec<JointConfig> {
        let mut out = vec![self.nodes[i].clone()];
        while self.parents[i] != i {
            i = self.parents[i];
            out.push(self.nodes[i].clone());
        }
        out.reverse();
        out
    }
}

fn steer(from: &JointConfig, to: &JointConfig, step: f32) -> JointConfig {
    let d = from.distance(to);
    if d <= step {
        to.clone()
    } else {
        from.lerp(to, step / d)
    }
}

fn out_of_budget(checker: &impl CollisionChecker, cd_before: u64, cfg: &RrtConfig) -> bool {
    cfg.max_cd_queries
        .is_some_and(|cap| checker.stats().pose_queries - cd_before >= cap)
}

/// Plain RRT with goal bias.
///
/// # Panics
///
/// Panics if start/goal DOF mismatch the robot.
pub fn rrt(
    checker: &mut impl CollisionChecker,
    start: &JointConfig,
    goal: &JointConfig,
    cfg: &RrtConfig,
    seed: u64,
) -> RrtOutcome {
    let robot = checker.robot().clone();
    let mut rng = StdRng::seed_from_u64(seed);
    let cd_before = checker.stats().pose_queries;
    if checker.check_pose(start) || checker.check_pose(goal) {
        return RrtOutcome {
            path: None,
            nodes: 0,
            cd_queries: checker.stats().pose_queries - cd_before,
        };
    }
    let mut tree = Tree::new(start.clone());
    while tree.nodes.len() < cfg.max_nodes && !out_of_budget(checker, cd_before, cfg) {
        let target = if rng.gen::<f32>() < cfg.goal_bias {
            goal.clone()
        } else {
            robot.sample_config(&mut rng)
        };
        let near = tree.nearest(&target);
        let new = steer(&tree.nodes[near], &target, cfg.steer_step);
        let edge = Motion::new(tree.nodes[near].clone(), new.clone());
        if check_motion(checker, &edge, cfg.cspace_step).colliding {
            continue;
        }
        tree.nodes.push(new.clone());
        tree.parents.push(near);
        // Goal connection attempt.
        let to_goal = Motion::new(new.clone(), goal.clone());
        if new.distance(goal) <= cfg.steer_step
            && !check_motion(checker, &to_goal, cfg.cspace_step).colliding
        {
            let mut path = tree.path_to_root(tree.nodes.len() - 1);
            path.push(goal.clone());
            return RrtOutcome {
                path: Some(path),
                nodes: tree.nodes.len(),
                cd_queries: checker.stats().pose_queries - cd_before,
            };
        }
    }
    RrtOutcome {
        path: None,
        nodes: tree.nodes.len(),
        cd_queries: checker.stats().pose_queries - cd_before,
    }
}

/// RRT-Connect: two trees grown toward each other with a greedy connect
/// heuristic. Usually far fewer samples than plain RRT.
///
/// # Panics
///
/// Panics if start/goal DOF mismatch the robot.
pub fn rrt_connect(
    checker: &mut impl CollisionChecker,
    start: &JointConfig,
    goal: &JointConfig,
    cfg: &RrtConfig,
    seed: u64,
) -> RrtOutcome {
    let _span = mp_telemetry::span("planner", "rrt_connect");
    let robot = checker.robot().clone();
    let mut rng = StdRng::seed_from_u64(seed);
    let cd_before = checker.stats().pose_queries;
    if checker.check_pose(start) || checker.check_pose(goal) {
        return RrtOutcome {
            path: None,
            nodes: 0,
            cd_queries: checker.stats().pose_queries - cd_before,
        };
    }
    let mut ta = Tree::new(start.clone());
    let mut tb = Tree::new(goal.clone());
    let mut a_is_start = true;

    while ta.nodes.len() + tb.nodes.len() < cfg.max_nodes && !out_of_budget(checker, cd_before, cfg)
    {
        let target = robot.sample_config(&mut rng);
        // Extend tree A toward the sample.
        let near_a = ta.nearest(&target);
        let new_a = steer(&ta.nodes[near_a], &target, cfg.steer_step);
        let edge = Motion::new(ta.nodes[near_a].clone(), new_a.clone());
        if !check_motion(checker, &edge, cfg.cspace_step).colliding {
            ta.nodes.push(new_a.clone());
            ta.parents.push(near_a);
            // Greedily connect tree B toward the new node.
            loop {
                if out_of_budget(checker, cd_before, cfg) {
                    break;
                }
                let near_b = tb.nearest(&new_a);
                let step_b = steer(&tb.nodes[near_b], &new_a, cfg.steer_step);
                let edge_b = Motion::new(tb.nodes[near_b].clone(), step_b.clone());
                if check_motion(checker, &edge_b, cfg.cspace_step).colliding {
                    break;
                }
                tb.nodes.push(step_b.clone());
                tb.parents.push(near_b);
                if step_b.distance(&new_a) < 1e-4 {
                    // Trees met: assemble the path.
                    let pa = ta.path_to_root(ta.nodes.len() - 1);
                    let pb = tb.path_to_root(tb.nodes.len() - 1);
                    let mut path = if a_is_start { pa.clone() } else { pb.clone() };
                    let mut tail = if a_is_start { pb } else { pa };
                    tail.reverse();
                    path.extend(tail);
                    dedup(&mut path);
                    return RrtOutcome {
                        path: Some(path),
                        nodes: ta.nodes.len() + tb.nodes.len(),
                        cd_queries: checker.stats().pose_queries - cd_before,
                    };
                }
            }
        }
        std::mem::swap(&mut ta, &mut tb);
        a_is_start = !a_is_start;
    }
    RrtOutcome {
        path: None,
        nodes: ta.nodes.len() + tb.nodes.len(),
        cd_queries: checker.stats().pose_queries - cd_before,
    }
}

fn dedup(path: &mut Vec<JointConfig>) {
    path.dedup_by(|a, b| a.distance(b) < 1e-6);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_collision::{check_path, SoftwareChecker};
    use mp_octree::{Octree, Scene, SceneConfig};
    use mp_robot::RobotModel;

    fn goal_for(robot: &RobotModel) -> JointConfig {
        let mut g = robot.home();
        g.as_mut_slice()[0] += 1.5;
        robot.clamp_config(&g)
    }

    #[test]
    fn rrt_solves_free_space() {
        let robot = RobotModel::planar_2dof();
        let mut checker = SoftwareChecker::new(robot.clone(), Octree::build(&[], 3));
        let out = rrt(
            &mut checker,
            &JointConfig::zeros(2),
            &JointConfig::new(vec![1.5, -0.5]),
            &RrtConfig::default(),
            1,
        );
        assert!(out.solved());
        let path = out.path.unwrap();
        assert_eq!(path.first().unwrap(), &JointConfig::zeros(2));
        assert!(
            path.last()
                .unwrap()
                .distance(&JointConfig::new(vec![1.5, -0.5]))
                < 1e-5
        );
    }

    #[test]
    fn rrt_connect_solves_benchmark_scenes_with_valid_paths() {
        let robot = RobotModel::jaco2();
        let mut solved = 0;
        let mut total = 0;
        for seed in 0..4 {
            let scene = Scene::random(SceneConfig::paper(), seed);
            for q in crate::queries::generate_queries(&robot, &scene, 2, seed + 60)
                .expect("paper scenes yield valid queries")
            {
                total += 1;
                let mut checker = SoftwareChecker::new(robot.clone(), scene.octree());
                let out = rrt_connect(
                    &mut checker,
                    &q.start,
                    &q.goal,
                    &RrtConfig::default(),
                    seed + 5,
                );
                if let Some(path) = &out.path {
                    solved += 1;
                    let mut verifier = SoftwareChecker::new(robot.clone(), scene.octree());
                    assert_eq!(check_path(&mut verifier, path, 0.04), None);
                }
            }
        }
        assert!(solved * 3 >= total * 2, "only {solved}/{total} solved");
    }

    #[test]
    fn rrt_gives_up_when_goal_unreachable() {
        let robot = RobotModel::planar_2dof();
        // Goal pose is inside an obstacle.
        let goal = JointConfig::new(vec![1.0, 0.0]);
        let ee = mp_robot::fk::end_effector(&robot, &goal);
        let tree = Octree::build(
            &[mp_geometry::Aabb::new(ee, mp_geometry::Vec3::splat(0.05))],
            5,
        );
        let mut checker = SoftwareChecker::new(robot.clone(), tree);
        let out = rrt(
            &mut checker,
            &JointConfig::zeros(2),
            &goal,
            &RrtConfig {
                max_nodes: 200,
                ..RrtConfig::default()
            },
            3,
        );
        assert!(!out.solved());
    }

    #[test]
    fn cd_budget_caps_the_search() {
        let robot = RobotModel::planar_2dof();
        // Goal pose inside an obstacle: unsolvable, so only the budget
        // (not success) can end the run early.
        let goal = JointConfig::new(vec![1.0, 0.0]);
        let ee = mp_robot::fk::end_effector(&robot, &goal);
        let tree = Octree::build(
            &[mp_geometry::Aabb::new(ee, mp_geometry::Vec3::splat(0.05))],
            5,
        );
        let cfg = RrtConfig {
            max_cd_queries: Some(150),
            ..RrtConfig::default()
        };
        let mut c1 = SoftwareChecker::new(robot.clone(), tree.clone());
        let a = rrt(&mut c1, &JointConfig::zeros(2), &goal, &cfg, 3);
        let mut c2 = SoftwareChecker::new(robot.clone(), tree.clone());
        let b = rrt_connect(&mut c2, &JointConfig::zeros(2), &goal, &cfg, 4);
        for out in [a, b] {
            assert!(!out.solved());
            // The cap is checked between edges, so one in-flight edge of
            // slack is allowed.
            assert!(
                out.cd_queries < 150 + 100,
                "spent {} queries",
                out.cd_queries
            );
        }
    }

    #[test]
    fn classical_planners_spend_more_cd_than_neural() {
        use crate::mpnet::{plan, MpnetConfig};
        use crate::sampler::OracleSampler;
        let robot = RobotModel::jaco2();
        let scene = Scene::random(SceneConfig::paper(), 2);
        let goal = goal_for(&robot);

        let mut c1 = SoftwareChecker::new(robot.clone(), scene.octree());
        let mut sampler = OracleSampler::new(robot.clone(), 4);
        let neural = plan(
            &mut c1,
            &mut sampler,
            &robot.home(),
            &goal,
            &MpnetConfig::default(),
        );

        let mut c2 = SoftwareChecker::new(robot.clone(), scene.octree());
        let classical = rrt(&mut c2, &robot.home(), &goal, &RrtConfig::default(), 4);

        if neural.solved() && classical.solved() {
            assert!(
                classical.cd_queries > neural.stats.cd_queries,
                "RRT {} vs MPNet {}",
                classical.cd_queries,
                neural.stats.cd_queries
            );
        }
    }
}
