//! A small from-scratch neural-network library: dense layers, forward
//! inference and SGD training.
//!
//! This substitutes for the PyTorch MPNet networks of the original artifact
//! (see DESIGN.md, substitution 1). The accelerator never executes the
//! network — it only needs the inference *cost* (MAC count) for the DNN
//! accelerator latency model — but a real trainable MLP is provided so the
//! sampler interface can be served by a genuinely learned model (e.g.
//! distilled from the oracle sampler).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Activation functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Identity (for output layers).
    Linear,
}

impl Activation {
    #[inline]
    fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Linear => x,
        }
    }

    /// Derivative with respect to the pre-activation, given the
    /// post-activation value.
    fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Linear => 1.0,
        }
    }
}

/// One dense (fully connected) layer.
#[derive(Clone, Debug, PartialEq)]
pub struct Dense {
    weights: Vec<f32>, // row-major [out][in]
    bias: Vec<f32>,
    inputs: usize,
    outputs: usize,
    activation: Activation,
}

impl Dense {
    /// Creates a layer with Xavier-uniform initialization.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(inputs: usize, outputs: usize, activation: Activation, rng: &mut StdRng) -> Dense {
        assert!(
            inputs > 0 && outputs > 0,
            "layer dimensions must be positive"
        );
        let bound = (6.0 / (inputs + outputs) as f32).sqrt();
        Dense {
            weights: (0..inputs * outputs)
                .map(|_| rng.gen_range(-bound..bound))
                .collect(),
            bias: vec![0.0; outputs],
            inputs,
            outputs,
            activation,
        }
    }

    /// Forward pass, allocating the output vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != inputs`.
    #[deprecated(note = "allocates per call; use `forward_into` with a reused buffer")]
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.outputs);
        self.forward_into(x, &mut out);
        out
    }

    /// Forward pass into a caller-provided buffer (cleared first) — the
    /// allocation-free form [`Mlp::forward_scratch`] builds on.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != inputs`.
    pub fn forward_into(&self, x: &[f32], out: &mut Vec<f32>) {
        assert_eq!(x.len(), self.inputs, "layer input size mismatch");
        out.clear();
        out.extend((0..self.outputs).map(|o| {
            let row = &self.weights[o * self.inputs..(o + 1) * self.inputs];
            let z: f32 = row.iter().zip(x).map(|(w, v)| w * v).sum::<f32>() + self.bias[o];
            self.activation.apply(z)
        }));
    }

    /// Multiply-accumulate operations in one forward pass.
    pub fn macs(&self) -> u64 {
        (self.inputs * self.outputs) as u64
    }

    /// Number of parameters.
    pub fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }
}

/// Reusable ping-pong activation buffers for [`Mlp::forward_scratch`].
///
/// Planner samplers run one inference per proposed pose — millions per
/// benchmark — so the per-layer activation vectors are the dominant
/// allocation of the planning hot path. A scratch held across calls
/// reduces that to zero after warmup.
#[derive(Clone, Debug, Default)]
pub struct MlpScratch {
    ping: Vec<f32>,
    pong: Vec<f32>,
}

/// A multi-layer perceptron.
///
/// # Examples
///
/// ```
/// use mp_planner::nn::{Activation, Mlp};
///
/// let mlp = Mlp::new(&[4, 16, 2], Activation::Tanh, 42);
/// let mut scratch = mp_planner::nn::MlpScratch::default();
/// let y = mlp.forward_scratch(&[0.1, -0.2, 0.3, 0.4], &mut scratch);
/// assert_eq!(y.len(), 2);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Creates an MLP with the given layer sizes. Hidden layers use the
    /// given activation; the output layer is linear.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new(sizes: &[usize], hidden: Activation, seed: u64) -> Mlp {
        assert!(
            sizes.len() >= 2,
            "an MLP needs at least input and output sizes"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = sizes
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let act = if i == sizes.len() - 2 {
                    Activation::Linear
                } else {
                    hidden
                };
                Dense::new(w[0], w[1], act, &mut rng)
            })
            .collect();
        Mlp { layers }
    }

    /// Forward inference, allocating fresh buffers per call.
    ///
    /// # Panics
    ///
    /// Panics if the input size does not match the first layer.
    #[deprecated(note = "allocates per call; use `forward_scratch` with a reused `MlpScratch`")]
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        self.forward_scratch(x, &mut MlpScratch::default()).to_vec()
    }

    /// Forward inference through reusable ping-pong buffers: no per-layer
    /// allocation, and none at all once the scratch has warmed up. The
    /// returned slice (borrowed from the scratch) is the output activation
    /// and is valid until the next call with the same scratch.
    ///
    /// # Panics
    ///
    /// Panics if the input size does not match the first layer.
    pub fn forward_scratch<'a>(&self, x: &[f32], scratch: &'a mut MlpScratch) -> &'a [f32] {
        let MlpScratch { ping, pong } = scratch;
        ping.clear();
        ping.extend_from_slice(x);
        for layer in &self.layers {
            layer.forward_into(ping, pong);
            std::mem::swap(ping, pong);
        }
        ping
    }

    /// Input dimensionality.
    pub fn input_size(&self) -> usize {
        // Invariant: `Mlp::new` rejects size lists shorter than two, so
        // the network always has at least one layer.
        self.layers
            .first()
            .expect("Mlp::new guarantees >= 1 layer")
            .inputs
    }

    /// Output dimensionality.
    pub fn output_size(&self) -> usize {
        self.layers
            .last()
            .expect("Mlp::new guarantees >= 1 layer")
            .outputs
    }

    /// Total MACs per inference (the DNN-accelerator latency driver).
    pub fn macs(&self) -> u64 {
        self.layers.iter().map(Dense::macs).sum()
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Dense::param_count).sum()
    }

    /// Mean-squared error over a dataset.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or shapes mismatch.
    pub fn mse(&self, data: &[(Vec<f32>, Vec<f32>)]) -> f32 {
        assert!(!data.is_empty(), "empty dataset");
        let mut scratch = MlpScratch::default();
        let mut total = 0.0;
        for (x, t) in data {
            let y = self.forward_scratch(x, &mut scratch);
            assert_eq!(y.len(), t.len(), "target size mismatch");
            total += y.iter().zip(t).map(|(a, b)| (a - b) * (a - b)).sum::<f32>() / t.len() as f32;
        }
        total / data.len() as f32
    }

    /// One epoch of SGD with backpropagation on MSE loss. Returns the mean
    /// loss before the update.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty, shapes mismatch, or `lr` is not
    /// positive.
    #[allow(clippy::needless_range_loop)] // index form mirrors the math
    pub fn train_epoch(&mut self, data: &[(Vec<f32>, Vec<f32>)], lr: f32) -> f32 {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!(!data.is_empty(), "empty dataset");
        let mut total_loss = 0.0;
        for (x, target) in data {
            // Forward, keeping activations. `acts[i]` is layer i's input;
            // `cur` tracks the latest activation so no panicking `last()`
            // lookups are needed.
            let mut acts: Vec<Vec<f32>> = Vec::with_capacity(self.layers.len() + 1);
            let mut cur = x.clone();
            for layer in &self.layers {
                let mut next = Vec::with_capacity(layer.outputs);
                layer.forward_into(&cur, &mut next);
                acts.push(std::mem::replace(&mut cur, next));
            }
            acts.push(cur);
            let y = &acts[self.layers.len()];
            assert_eq!(y.len(), target.len(), "target size mismatch");
            total_loss += y
                .iter()
                .zip(target)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
                / target.len() as f32;

            // Backward.
            let mut delta: Vec<f32> = y
                .iter()
                .zip(target)
                .map(|(a, b)| 2.0 * (a - b) / target.len() as f32)
                .collect();
            for (li, layer) in self.layers.iter_mut().enumerate().rev() {
                let input = &acts[li];
                let output = &acts[li + 1];
                // d pre-activation.
                let dz: Vec<f32> = delta
                    .iter()
                    .zip(output)
                    .map(|(d, &o)| d * layer.activation.derivative_from_output(o))
                    .collect();
                // Gradient wrt input for the next (earlier) layer.
                let mut dinput = vec![0.0f32; layer.inputs];
                for o in 0..layer.outputs {
                    for i in 0..layer.inputs {
                        dinput[i] += layer.weights[o * layer.inputs + i] * dz[o];
                    }
                }
                // Update.
                for o in 0..layer.outputs {
                    for i in 0..layer.inputs {
                        layer.weights[o * layer.inputs + i] -= lr * dz[o] * input[i];
                    }
                    layer.bias[o] -= lr * dz[o];
                }
                delta = dinput;
            }
        }
        total_loss / data.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_counts() {
        let mlp = Mlp::new(&[8, 32, 16, 4], Activation::Relu, 1);
        assert_eq!(mlp.input_size(), 8);
        assert_eq!(mlp.output_size(), 4);
        assert_eq!(mlp.macs(), (8 * 32 + 32 * 16 + 16 * 4) as u64);
        assert_eq!(mlp.param_count(), 8 * 32 + 32 + 32 * 16 + 16 + 16 * 4 + 4);
        let mut scratch = MlpScratch::default();
        assert_eq!(mlp.forward_scratch(&[0.0; 8], &mut scratch).len(), 4);
    }

    #[test]
    #[allow(deprecated)] // the allocating path is the reference under test
    fn scratch_inference_matches_allocating_forward() {
        let mlp = Mlp::new(&[6, 24, 12, 3], Activation::Tanh, 21);
        let mut scratch = MlpScratch::default();
        // Reuse the same scratch across calls: results must stay identical
        // to the allocating path.
        for i in 0..5 {
            let x: Vec<f32> = (0..6).map(|j| ((i * 6 + j) as f32 * 0.37).sin()).collect();
            let expect = mlp.forward(&x);
            assert_eq!(mlp.forward_scratch(&x, &mut scratch), expect.as_slice());
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let a = Mlp::new(&[4, 8, 2], Activation::Tanh, 7);
        let b = Mlp::new(&[4, 8, 2], Activation::Tanh, 7);
        let c = Mlp::new(&[4, 8, 2], Activation::Tanh, 8);
        let x = [0.3, -0.1, 0.9, 0.5];
        let mut s = MlpScratch::default();
        let ya = a.forward_scratch(&x, &mut s).to_vec();
        let yb = b.forward_scratch(&x, &mut s).to_vec();
        let yc = c.forward_scratch(&x, &mut s).to_vec();
        assert_eq!(ya, yb);
        assert_ne!(ya, yc);
    }

    #[test]
    fn activations() {
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert_eq!(Activation::Linear.apply(-3.5), -3.5);
        assert!((Activation::Tanh.apply(0.0)).abs() < 1e-7);
    }

    #[test]
    fn training_reduces_loss_on_linear_task() {
        // Learn y = [x0 + x1, x0 - x1].
        let mut rng = StdRng::seed_from_u64(3);
        let data: Vec<(Vec<f32>, Vec<f32>)> = (0..200)
            .map(|_| {
                let x0 = rng.gen_range(-1.0f32..1.0);
                let x1 = rng.gen_range(-1.0f32..1.0);
                (vec![x0, x1], vec![x0 + x1, x0 - x1])
            })
            .collect();
        let mut mlp = Mlp::new(&[2, 16, 2], Activation::Tanh, 11);
        let before = mlp.mse(&data);
        for _ in 0..60 {
            mlp.train_epoch(&data, 0.05);
        }
        let after = mlp.mse(&data);
        assert!(
            after < before * 0.15,
            "loss did not drop enough: {before} -> {after}"
        );
    }

    #[test]
    fn training_nonlinear_task_learns_something() {
        // y = x0 * x1 — needs the hidden layer.
        let mut rng = StdRng::seed_from_u64(5);
        let data: Vec<(Vec<f32>, Vec<f32>)> = (0..300)
            .map(|_| {
                let x0 = rng.gen_range(-1.0f32..1.0);
                let x1 = rng.gen_range(-1.0f32..1.0);
                (vec![x0, x1], vec![x0 * x1])
            })
            .collect();
        let mut mlp = Mlp::new(&[2, 24, 1], Activation::Tanh, 13);
        let before = mlp.mse(&data);
        for _ in 0..120 {
            mlp.train_epoch(&data, 0.05);
        }
        assert!(mlp.mse(&data) < before * 0.5);
    }

    #[test]
    #[should_panic(expected = "input size mismatch")]
    fn wrong_input_size_panics() {
        let mlp = Mlp::new(&[3, 2], Activation::Relu, 0);
        let _ = mlp.forward_scratch(&[1.0, 2.0], &mut MlpScratch::default());
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn degenerate_architecture_rejected() {
        let _ = Mlp::new(&[5], Activation::Relu, 0);
    }
}
