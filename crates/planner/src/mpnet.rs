//! An MPNet-style learning-based motion planner (§2.1, \[43\]).
//!
//! The planner follows MPNet's structure: a neural sampler proposes
//! intermediate poses bidirectionally between start and goal (neural
//! planning), the resulting coarse path is *feasibility checked* in
//! batches, infeasible segments are *replanned* with stochastic resampling,
//! and the final path is smoothed by *greedy shortcutting* ("path
//! optimization", Fig 3) which uses the scheduler's connectivity-test mode.
//!
//! Every neural inference, controller step and collision-detection batch is
//! recorded into a [`PlannerTrace`], which `mpaccel-core` replays against
//! the hardware models — mirroring the trace-driven methodology of the
//! original artifact.

use mp_collision::CollisionChecker;
use mp_robot::{JointConfig, Motion, MotionDescriptor};
use mpaccel_core::sas::FunctionMode;
use mpaccel_core::trace::{PlannerTrace, TraceEvent};

use crate::sampler::NeuralSampler;

/// Planner parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MpnetConfig {
    /// Maximum bidirectional expansion steps in neural planning.
    pub max_expansion_steps: usize,
    /// Maximum replanning insertions before giving up.
    pub replan_attempts: usize,
    /// C-space discretization step for motion checking (radians).
    pub cspace_step: f32,
    /// Whether to run the greedy shortcutting phase.
    pub shortcut: bool,
    /// Hard cap on path waypoints (guards replanning growth).
    pub max_waypoints: usize,
    /// Extra detour noise during replanning (radians). MPNet gets this
    /// exploration from inference-time dropout; the noise escalates with
    /// consecutive failed repairs.
    pub replan_noise: f32,
    /// Seed for the replanning noise.
    pub seed: u64,
}

impl Default for MpnetConfig {
    fn default() -> MpnetConfig {
        MpnetConfig {
            max_expansion_steps: 40,
            replan_attempts: 20,
            cspace_step: 0.04,
            shortcut: true,
            max_waypoints: 64,
            replan_noise: 0.6,
            seed: 0,
        }
    }
}

/// Planner statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Neural-network inferences performed.
    pub nn_calls: u64,
    /// Collision-detection pose queries executed while planning.
    pub cd_queries: u64,
    /// Waypoints in the coarse path before optimization.
    pub coarse_waypoints: usize,
    /// Replanning insertions performed.
    pub replans: u64,
    /// Waypoints removed by shortcutting.
    pub shortcut_removed: usize,
}

/// The planner's result: a path (if found), the execution trace, and stats.
#[derive(Clone, Debug)]
pub struct PlanOutcome {
    /// The collision-free path, start to goal, if planning succeeded.
    pub path: Option<Vec<JointConfig>>,
    /// The recorded execution trace (replayable on MPAccel).
    pub trace: PlannerTrace,
    /// Work statistics.
    pub stats: PlanStats,
}

impl PlanOutcome {
    /// Whether a path was found.
    pub fn solved(&self) -> bool {
        self.path.is_some()
    }

    /// C-space length of the found path.
    pub fn path_length(&self) -> Option<f32> {
        self.path
            .as_ref()
            .map(|p| p.windows(2).map(|w| w[0].distance(&w[1])).sum())
    }
}

/// Plans a path from `start` to `goal`.
///
/// # Panics
///
/// Panics if start/goal DOF mismatch the checker's robot.
///
/// # Examples
///
/// ```
/// use mp_collision::SoftwareChecker;
/// use mp_octree::Octree;
/// use mp_planner::mpnet::{plan, MpnetConfig};
/// use mp_planner::sampler::OracleSampler;
/// use mp_robot::RobotModel;
///
/// let robot = RobotModel::jaco2();
/// let mut checker = SoftwareChecker::new(robot.clone(), Octree::build(&[], 3));
/// let mut sampler = OracleSampler::new(robot.clone(), 1);
/// let mut goal = robot.home();
/// goal.as_mut_slice()[0] += 1.0;
/// let out = plan(&mut checker, &mut sampler, &robot.home(), &goal, &MpnetConfig::default());
/// assert!(out.solved());
/// ```
pub fn plan(
    checker: &mut impl CollisionChecker,
    sampler: &mut impl NeuralSampler,
    start: &JointConfig,
    goal: &JointConfig,
    cfg: &MpnetConfig,
) -> PlanOutcome {
    let mut trace = PlannerTrace::new();
    let mut stats = PlanStats::default();
    let step = cfg.cspace_step;
    let cd_before = checker.stats().pose_queries;

    // Environment + query upload (Fig 11, step 1).
    trace.push(TraceEvent::BusTransfer {
        bytes: 768 + (4 * start.dof() as u64) * 2,
    });

    // Endpoint validity.
    if checker.check_pose(start) || checker.check_pose(goal) {
        stats.cd_queries = checker.stats().pose_queries - cd_before;
        return PlanOutcome {
            path: None,
            trace,
            stats,
        };
    }

    // --- Phase 1: bidirectional neural planning. ---
    let mut path_a = vec![start.clone()];
    let mut path_b = vec![goal.clone()];
    let mut connected = false;
    for _ in 0..cfg.max_expansion_steps {
        let end_a = path_a.last().expect("non-empty").clone();
        let end_b = path_b.last().expect("non-empty").clone();
        // Direct connection attempt (one-motion feasibility batch).
        let m = Motion::new(end_a.clone(), end_b.clone());
        if run_feasibility_batch(checker, &mut trace, &[m], step).is_none() {
            connected = true;
            break;
        }
        // Propose the next pose from the active end, rejecting proposals
        // that land inside obstacles (a colliding waypoint can never be
        // repaired by replanning around it).
        let mut next = None;
        for _ in 0..5 {
            trace.push(TraceEvent::NnInference {
                macs: sampler.macs(),
            });
            stats.nn_calls += 1;
            let candidate = sampler.next_pose(&end_a, &end_b);
            if !checker.check_pose(&candidate) {
                next = Some(candidate);
                break;
            }
        }
        trace.push(TraceEvent::Controller { instructions: 300 });
        if let Some(next) = next {
            path_a.push(next);
        }
        std::mem::swap(&mut path_a, &mut path_b);
    }
    if !connected {
        stats.cd_queries = checker.stats().pose_queries - cd_before;
        return PlanOutcome {
            path: None,
            trace,
            stats,
        };
    }
    path_b.reverse();
    let mut path: Vec<JointConfig> = path_a;
    path.extend(path_b);
    // Re-orient: the swapping may have left `start` at the back.
    if path.first() != Some(start) {
        path.reverse();
    }
    dedup_consecutive(&mut path);
    stats.coarse_waypoints = path.len();

    // --- Phase 2: feasibility checking + neural replanning. ---
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EED);
    let robot = checker.robot().clone();
    let mut attempts = cfg.replan_attempts;
    let mut consecutive_failures = 0u32;
    let mut last_bad = usize::MAX;
    loop {
        let motions: Vec<Motion> = path
            .windows(2)
            .map(|w| Motion::new(w[0].clone(), w[1].clone()))
            .collect();
        match run_feasibility_batch(checker, &mut trace, &motions, step) {
            None => break, // whole path feasible
            Some(bad) => {
                if attempts == 0 || path.len() >= cfg.max_waypoints {
                    stats.cd_queries = checker.stats().pose_queries - cd_before;
                    return PlanOutcome {
                        path: None,
                        trace,
                        stats,
                    };
                }
                attempts -= 1;
                stats.replans += 1;
                // Neural replanning: propose a detour waypoint between the
                // endpoints of the infeasible segment. The exploration
                // noise escalates while repairs keep failing on the same
                // segment (MPNet's stochastic re-sampling role).
                consecutive_failures = if bad == last_bad {
                    consecutive_failures + 1
                } else {
                    0
                };
                last_bad = bad;
                trace.push(TraceEvent::NnInference {
                    macs: sampler.macs(),
                });
                stats.nn_calls += 1;
                let amp = cfg.replan_noise * (1.0 + consecutive_failures as f32 * 0.5);
                let mut detour = None;
                for _ in 0..5 {
                    let proposal = sampler.next_pose(&path[bad], &path[bad + 1]);
                    let candidate = robot.clamp_config(&JointConfig::new(
                        proposal
                            .as_slice()
                            .iter()
                            .map(|&v| v + rng.gen_range(-amp..=amp))
                            .collect(),
                    ));
                    if !checker.check_pose(&candidate) {
                        detour = Some(candidate);
                        break;
                    }
                }
                let Some(detour) = detour else { continue };
                trace.push(TraceEvent::Controller { instructions: 500 });
                // A repair replaces a previously inserted detour for this
                // segment rather than growing the path unboundedly.
                if consecutive_failures > 0 && bad + 1 < path.len() - 1 {
                    path[bad + 1] = detour;
                } else {
                    path.insert(bad + 1, detour);
                }
                dedup_consecutive(&mut path);
            }
        }
    }

    // --- Phase 3: path optimization (greedy shortcutting, §2.1). ---
    if cfg.shortcut {
        let before = path.len();
        greedy_shortcut(checker, &mut trace, &mut path, step);
        stats.shortcut_removed = before - path.len();
    }

    trace.solved = true;
    stats.cd_queries = checker.stats().pose_queries - cd_before;
    PlanOutcome {
        path: Some(path),
        trace,
        stats,
    }
}

/// Runs a feasibility batch: records the batch into the trace and evaluates
/// it with sequential early-exit semantics, returning the index of the
/// first infeasible motion (or `None` if all are free).
fn run_feasibility_batch(
    checker: &mut impl CollisionChecker,
    trace: &mut PlannerTrace,
    motions: &[Motion],
    step: f32,
) -> Option<usize> {
    let descriptors: Vec<MotionDescriptor> = motions.iter().map(|m| m.descriptor(step)).collect();
    trace.push(TraceEvent::CdBatch {
        motions: descriptors,
        mode: FunctionMode::Feasibility,
    });
    for (i, m) in motions.iter().enumerate() {
        if mp_collision::check_motion(checker, m, step).colliding {
            return Some(i);
        }
    }
    None
}

/// Greedy shortcutting using the connectivity-test mode: for each anchor,
/// the pool of "skip ahead to j" motions is scheduled and the farthest
/// collision-free one wins (§2.1, Fig 3 "path optimization").
fn greedy_shortcut(
    checker: &mut impl CollisionChecker,
    trace: &mut PlannerTrace,
    path: &mut Vec<JointConfig>,
    step: f32,
) {
    let mut i = 0;
    while i + 2 < path.len() {
        // Candidate motions i -> j, farthest first.
        let candidates: Vec<usize> = ((i + 2)..path.len()).rev().collect();
        let motions: Vec<MotionDescriptor> = candidates
            .iter()
            .map(|&j| Motion::new(path[i].clone(), path[j].clone()).descriptor(step))
            .collect();
        trace.push(TraceEvent::CdBatch {
            motions,
            mode: FunctionMode::Connectivity,
        });
        let mut found = None;
        for &j in &candidates {
            let m = Motion::new(path[i].clone(), path[j].clone());
            if !mp_collision::check_motion(checker, &m, step).colliding {
                found = Some(j);
                break;
            }
        }
        if let Some(j) = found {
            // Poses between i and j are redundant.
            path.drain(i + 1..j);
        }
        i += 1;
    }
}

/// Removes consecutive duplicate waypoints.
fn dedup_consecutive(path: &mut Vec<JointConfig>) {
    path.dedup_by(|a, b| a.distance(b) < 1e-6);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::OracleSampler;
    use mp_collision::{check_path, SoftwareChecker};
    use mp_geometry::{Aabb, Vec3};
    use mp_octree::{Octree, Scene, SceneConfig};
    use mp_robot::RobotModel;

    fn far_goal(robot: &RobotModel) -> JointConfig {
        let mut g = robot.home();
        g.as_mut_slice()[0] += 1.6;
        g.as_mut_slice()[1] += 0.4;
        robot.clamp_config(&g)
    }

    #[test]
    fn plans_in_free_space() {
        let robot = RobotModel::jaco2();
        let mut checker = SoftwareChecker::new(robot.clone(), Octree::build(&[], 3));
        let mut sampler = OracleSampler::new(robot.clone(), 2);
        let out = plan(
            &mut checker,
            &mut sampler,
            &robot.home(),
            &far_goal(&robot),
            &MpnetConfig::default(),
        );
        assert!(out.solved());
        let path = out.path.unwrap();
        assert_eq!(path.first().unwrap(), &robot.home());
        assert_eq!(path.last().unwrap(), &far_goal(&robot));
        assert!(out.trace.solved);
        assert!(out.trace.cd_batches() >= 1);
    }

    #[test]
    fn found_paths_are_actually_feasible() {
        let robot = RobotModel::jaco2();
        let mut solved = 0;
        let mut total = 0;
        for seed in 0..4 {
            let scene = Scene::random(SceneConfig::paper(), seed);
            for (qi, q) in crate::queries::generate_queries(&robot, &scene, 3, seed + 50)
                .iter()
                .enumerate()
            {
                total += 1;
                let mut checker = SoftwareChecker::new(robot.clone(), scene.octree());
                let mut sampler = OracleSampler::new(robot.clone(), seed + 10 + qi as u64);
                let out = plan(
                    &mut checker,
                    &mut sampler,
                    &q.start,
                    &q.goal,
                    &MpnetConfig::default(),
                );
                if let Some(path) = &out.path {
                    solved += 1;
                    // Independent verification with a fresh checker.
                    let mut verifier = SoftwareChecker::new(robot.clone(), scene.octree());
                    assert_eq!(
                        check_path(&mut verifier, path, 0.04),
                        None,
                        "planner returned an infeasible path on seed {seed} query {qi}"
                    );
                    assert_eq!(path.first().unwrap(), &q.start);
                    assert_eq!(path.last().unwrap(), &q.goal);
                }
            }
        }
        assert!(
            solved * 3 >= total * 2,
            "only {solved}/{total} valid queries solved"
        );
    }

    #[test]
    fn planner_detours_around_blocking_obstacle() {
        let robot = RobotModel::planar_2dof();
        // Wall in front of the straight-line sweep.
        let block = Aabb::new(Vec3::new(0.55, 0.35, 0.0), Vec3::new(0.08, 0.08, 0.3));
        let tree = Octree::build(&[block], 5);
        let mut checker = SoftwareChecker::new(robot.clone(), tree);
        let start = JointConfig::new(vec![0.0, 0.0]);
        let goal = JointConfig::new(vec![1.5, 0.0]);
        // Straight line must be infeasible for the test to be meaningful.
        assert!(
            mp_collision::check_motion(
                &mut checker,
                &Motion::new(start.clone(), goal.clone()),
                0.04
            )
            .colliding
        );
        // The only detours fold the elbow *away* from the wall — a narrow
        // region the goal-directed sampler must discover stochastically
        // (real MPNet gets this from its learned distribution). Require at
        // least one success over a batch of seeds, and verify that success.
        let mut solved_any = false;
        for seed in 0..12 {
            let mut sampler = OracleSampler::new(robot.clone(), seed)
                .with_noise(0.6)
                .with_step(0.5);
            let cfg = MpnetConfig {
                replan_attempts: 30,
                max_expansion_steps: 60,
                seed,
                ..MpnetConfig::default()
            };
            let out = plan(&mut checker, &mut sampler, &start, &goal, &cfg);
            if let Some(path) = &out.path {
                assert!(path.len() >= 3, "a detour needs intermediate waypoints");
                let mut verifier = SoftwareChecker::new(robot.clone(), checker.octree().clone());
                assert_eq!(check_path(&mut verifier, path, 0.04), None);
                solved_any = true;
                break;
            }
        }
        assert!(
            solved_any,
            "planner failed on a solvable scene for every seed"
        );
    }

    #[test]
    fn shortcutting_shortens_paths() {
        let robot = RobotModel::jaco2();
        let mut checker = SoftwareChecker::new(robot.clone(), Octree::build(&[], 3));
        let mut noisy = OracleSampler::new(robot.clone(), 8)
            .with_noise(0.5)
            .with_step(0.4);
        let goal = far_goal(&robot);
        let with = plan(
            &mut checker,
            &mut noisy,
            &robot.home(),
            &goal,
            &MpnetConfig::default(),
        );
        let mut noisy2 = OracleSampler::new(robot.clone(), 8)
            .with_noise(0.5)
            .with_step(0.4);
        let without = plan(
            &mut checker,
            &mut noisy2,
            &robot.home(),
            &goal,
            &MpnetConfig {
                shortcut: false,
                ..MpnetConfig::default()
            },
        );
        let (Some(lw), Some(lo)) = (with.path_length(), without.path_length()) else {
            panic!("both plans should succeed in free space");
        };
        assert!(lw <= lo + 1e-4, "shortcut path {lw} longer than raw {lo}");
    }

    #[test]
    fn colliding_endpoints_fail_fast() {
        let robot = RobotModel::jaco2();
        // Obstacle right on the home pose end effector.
        let ee = mp_robot::fk::end_effector(&robot, &robot.home());
        let tree = Octree::build(&[Aabb::new(ee, Vec3::splat(0.1))], 5);
        let mut checker = SoftwareChecker::new(robot.clone(), tree);
        let mut sampler = OracleSampler::new(robot.clone(), 0);
        let out = plan(
            &mut checker,
            &mut sampler,
            &robot.home(),
            &far_goal(&robot),
            &MpnetConfig::default(),
        );
        assert!(!out.solved());
        assert_eq!(out.trace.cd_batches(), 0); // failed before any batch
    }

    #[test]
    fn trace_contains_all_phase_kinds_on_success() {
        let robot = RobotModel::jaco2();
        let scene = Scene::random(SceneConfig::paper(), 1);
        let mut checker = SoftwareChecker::new(robot.clone(), scene.octree());
        let mut sampler = OracleSampler::new(robot.clone(), 3)
            .with_noise(0.3)
            .with_step(0.5);
        let out = plan(
            &mut checker,
            &mut sampler,
            &robot.home(),
            &far_goal(&robot),
            &MpnetConfig::default(),
        );
        if out.solved() {
            assert!(out.trace.nn_inferences() >= 1);
            let has_connectivity = out.trace.events.iter().any(|e| {
                matches!(
                    e,
                    TraceEvent::CdBatch {
                        mode: FunctionMode::Connectivity,
                        ..
                    }
                )
            });
            let has_feasibility = out.trace.events.iter().any(|e| {
                matches!(
                    e,
                    TraceEvent::CdBatch {
                        mode: FunctionMode::Feasibility,
                        ..
                    }
                )
            });
            assert!(has_feasibility);
            // Connectivity batches appear when the path had >2 waypoints.
            if out.stats.coarse_waypoints > 2 {
                assert!(has_connectivity);
            }
        }
    }
}
