//! An MPNet-style learning-based motion planner (§2.1, \[43\]).
//!
//! The planner follows MPNet's structure: a neural sampler proposes
//! intermediate poses bidirectionally between start and goal (neural
//! planning), the resulting coarse path is *feasibility checked* in
//! batches, infeasible segments are *replanned* with stochastic resampling,
//! and the final path is smoothed by *greedy shortcutting* ("path
//! optimization", Fig 3) which uses the scheduler's connectivity-test mode.
//!
//! Every neural inference, controller step and collision-detection batch is
//! recorded into a [`PlannerTrace`], which `mpaccel-core` replays against
//! the hardware models — mirroring the trace-driven methodology of the
//! original artifact.

use mp_collision::CollisionChecker;
use mp_robot::{JointConfig, Motion, MotionDescriptor};
use mp_sim::{EnergyLedger, OpCounter};
use mpaccel_core::sas::FunctionMode;
use mpaccel_core::trace::{PlannerTrace, TraceEvent};

use crate::rrt::{rrt_connect, RrtConfig, RrtOutcome};
use crate::sampler::NeuralSampler;

/// Modeled microseconds per collision-detection pose query: ~100 CECDU
/// cycles (Table 1 band) at the 2.24 ns multi-cycle clock (§7.3).
pub const CD_QUERY_MODELED_US: f64 = 0.224;

/// Modeled microseconds per neural inference on the DNN accelerator
/// (Fig 11): a small MLP at a few GMAC/s.
pub const NN_CALL_MODELED_US: f64 = 2.0;

/// Resource budget for one planning attempt (realtime deadline
/// enforcement). `None` fields are unlimited.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PlanBudget {
    /// Cap on collision-detection pose queries.
    pub max_cd_queries: Option<u64>,
    /// Cap on neural-sampler inferences.
    pub max_nn_calls: Option<u64>,
    /// Cap on modeled wall time (µs), combining CD and NN work through
    /// [`CD_QUERY_MODELED_US`] and [`NN_CALL_MODELED_US`].
    pub max_modeled_us: Option<f64>,
}

impl PlanBudget {
    /// No limits (the pre-budget behaviour).
    pub fn unlimited() -> PlanBudget {
        PlanBudget::default()
    }

    /// A pure modeled-deadline budget.
    pub fn deadline_us(us: f64) -> PlanBudget {
        PlanBudget {
            max_modeled_us: Some(us),
            ..PlanBudget::default()
        }
    }

    /// Modeled time (µs) for a given amount of work.
    pub fn modeled_us(cd_queries: u64, nn_calls: u64) -> f64 {
        cd_queries as f64 * CD_QUERY_MODELED_US + nn_calls as f64 * NN_CALL_MODELED_US
    }

    /// The resource this work load has exhausted, if any.
    pub fn exceeded(&self, cd_queries: u64, nn_calls: u64) -> Option<BudgetResource> {
        if self.max_cd_queries.is_some_and(|cap| cd_queries >= cap) {
            return Some(BudgetResource::CdQueries);
        }
        if self.max_nn_calls.is_some_and(|cap| nn_calls >= cap) {
            return Some(BudgetResource::NnCalls);
        }
        if self
            .max_modeled_us
            .is_some_and(|cap| PlanBudget::modeled_us(cd_queries, nn_calls) >= cap)
        {
            return Some(BudgetResource::ModeledTime);
        }
        None
    }
}

/// Which budgeted resource ran out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetResource {
    /// [`PlanBudget::max_cd_queries`].
    CdQueries,
    /// [`PlanBudget::max_nn_calls`].
    NnCalls,
    /// [`PlanBudget::max_modeled_us`].
    ModeledTime,
}

/// Why a planning attempt failed (structured, for graceful degradation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanFailure {
    /// The start configuration collides.
    InvalidStart,
    /// The goal configuration collides.
    InvalidGoal,
    /// The sampler kept proposing colliding poses from both ends despite
    /// escalating exploration noise (Phase-1 stall).
    Stalled,
    /// The bidirectional expansion budget ran out before the trees met.
    NotConnected,
    /// Replanning attempts or the waypoint cap ran out while repairing an
    /// infeasible coarse path.
    ReplanExhausted,
    /// A [`PlanBudget`] resource ran out.
    BudgetExhausted(BudgetResource),
}

impl core::fmt::Display for PlanFailure {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PlanFailure::InvalidStart => write!(f, "start configuration collides"),
            PlanFailure::InvalidGoal => write!(f, "goal configuration collides"),
            PlanFailure::Stalled => write!(f, "sampler stalled (all proposals colliding)"),
            PlanFailure::NotConnected => write!(f, "bidirectional expansion never connected"),
            PlanFailure::ReplanExhausted => write!(f, "replanning budget exhausted"),
            PlanFailure::BudgetExhausted(r) => write!(f, "plan budget exhausted ({r:?})"),
        }
    }
}

/// Planner parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MpnetConfig {
    /// Maximum bidirectional expansion steps in neural planning.
    pub max_expansion_steps: usize,
    /// Maximum replanning insertions before giving up.
    pub replan_attempts: usize,
    /// C-space discretization step for motion checking (radians).
    pub cspace_step: f32,
    /// Whether to run the greedy shortcutting phase.
    pub shortcut: bool,
    /// Hard cap on path waypoints (guards replanning growth).
    pub max_waypoints: usize,
    /// Extra detour noise during replanning (radians). MPNet gets this
    /// exploration from inference-time dropout; the noise escalates with
    /// consecutive failed repairs.
    pub replan_noise: f32,
    /// Seed for the replanning noise.
    pub seed: u64,
    /// Resource budget (deadline enforcement); unlimited by default.
    pub budget: PlanBudget,
    /// Consecutive fully-stalled expansion steps (every sampler proposal
    /// colliding, both ends, despite escalating noise) before the planner
    /// gives up with [`PlanFailure::Stalled`].
    pub max_stall_streak: u32,
}

impl Default for MpnetConfig {
    fn default() -> MpnetConfig {
        MpnetConfig {
            max_expansion_steps: 40,
            replan_attempts: 20,
            cspace_step: 0.04,
            shortcut: true,
            max_waypoints: 64,
            replan_noise: 0.6,
            seed: 0,
            budget: PlanBudget::unlimited(),
            max_stall_streak: 12,
        }
    }
}

/// Planner statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Neural-network inferences performed.
    pub nn_calls: u64,
    /// Collision-detection pose queries executed while planning.
    pub cd_queries: u64,
    /// Waypoints in the coarse path before optimization.
    pub coarse_waypoints: usize,
    /// Replanning insertions performed.
    pub replans: u64,
    /// Waypoints removed by shortcutting.
    pub shortcut_removed: usize,
}

/// The planner's result: a path (if found), the execution trace, and stats.
#[derive(Clone, Debug)]
pub struct PlanOutcome {
    /// The collision-free path, start to goal, if planning succeeded.
    pub path: Option<Vec<JointConfig>>,
    /// The recorded execution trace (replayable on MPAccel).
    pub trace: PlannerTrace,
    /// Work statistics.
    pub stats: PlanStats,
    /// Why planning failed (`None` on success).
    pub failure: Option<PlanFailure>,
    /// Per-phase energy attribution: CD work (priced from the checker's
    /// counter deltas) plus the NN MACs and upload bytes each phase spent.
    /// The phases partition the attempt, so `ledger.total_energy_pj()` is
    /// the whole attempt's dynamic energy (see `mp_sim::ledger`).
    pub ledger: EnergyLedger,
}

impl PlanOutcome {
    /// Whether a path was found.
    pub fn solved(&self) -> bool {
        self.path.is_some()
    }

    /// Total dynamic energy the attempt spent, in picojoules.
    pub fn energy_pj(&self) -> f64 {
        self.ledger.total_energy_pj()
    }

    /// C-space length of the found path.
    pub fn path_length(&self) -> Option<f32> {
        self.path
            .as_ref()
            .map(|p| p.windows(2).map(|w| w[0].distance(&w[1])).sum())
    }
}

/// Plans a path from `start` to `goal`.
///
/// # Panics
///
/// Panics if start/goal DOF mismatch the checker's robot.
///
/// # Examples
///
/// ```
/// use mp_collision::SoftwareChecker;
/// use mp_octree::Octree;
/// use mp_planner::mpnet::{plan, MpnetConfig};
/// use mp_planner::sampler::OracleSampler;
/// use mp_robot::RobotModel;
///
/// let robot = RobotModel::jaco2();
/// let mut checker = SoftwareChecker::new(robot.clone(), Octree::build(&[], 3));
/// let mut sampler = OracleSampler::new(robot.clone(), 1);
/// let mut goal = robot.home();
/// goal.as_mut_slice()[0] += 1.0;
/// let out = plan(&mut checker, &mut sampler, &robot.home(), &goal, &MpnetConfig::default());
/// assert!(out.solved());
/// ```
pub fn plan(
    checker: &mut impl CollisionChecker,
    sampler: &mut impl NeuralSampler,
    start: &JointConfig,
    goal: &JointConfig,
    cfg: &MpnetConfig,
) -> PlanOutcome {
    let mut trace = PlannerTrace::new();
    let mut stats = PlanStats::default();
    let step = cfg.cspace_step;
    let cd_before = checker.stats().pose_queries;

    // Per-phase energy ledger: CD work is billed by differencing the
    // checker's counters at phase boundaries (the marks are contiguous, so
    // the scopes partition the attempt's CD work exactly); NN MACs and the
    // upload bytes are billed to the phase that spent them.
    let mut ledger = EnergyLedger::new();

    // Environment + query upload (Fig 11, step 1).
    let upload_bytes = 768 + (4 * start.dof() as u64) * 2;
    trace.push(TraceEvent::BusTransfer {
        bytes: upload_bytes,
    });
    ledger.bill(
        "upload",
        OpCounter {
            dram_bytes: upload_bytes,
            ..OpCounter::default()
        },
    );

    // Endpoint validity.
    let mark = checker.stats();
    if checker.check_pose(start) {
        stats.cd_queries = checker.stats().pose_queries - cd_before;
        ledger.bill("endpoints", checker.stats().delta_since(&mark).to_ops());
        return PlanOutcome {
            path: None,
            trace,
            stats,
            failure: Some(PlanFailure::InvalidStart),
            ledger,
        };
    }
    if checker.check_pose(goal) {
        stats.cd_queries = checker.stats().pose_queries - cd_before;
        ledger.bill("endpoints", checker.stats().delta_since(&mark).to_ops());
        return PlanOutcome {
            path: None,
            trace,
            stats,
            failure: Some(PlanFailure::InvalidGoal),
            ledger,
        };
    }
    ledger.bill("endpoints", checker.stats().delta_since(&mark).to_ops());

    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EED);
    let robot = checker.robot().clone();

    // --- Phase 1: bidirectional neural planning. ---
    let phase1 = mp_telemetry::span("planner", "phase1_neural");
    let mark = checker.stats();
    let mut phase_macs = 0u64;
    let mut path_a = vec![start.clone()];
    let mut path_b = vec![goal.clone()];
    let mut connected = false;
    let mut stall_streak = 0u32;
    let mut phase1_failure = None;
    for _ in 0..cfg.max_expansion_steps {
        if let Some(r) = cfg
            .budget
            .exceeded(checker.stats().pose_queries - cd_before, stats.nn_calls)
        {
            phase1_failure = Some(PlanFailure::BudgetExhausted(r));
            break;
        }
        // Invariant: both paths are seeded with one endpoint above and
        // only ever grow, so `last()` always exists.
        let end_a = path_a.last().expect("path_a seeded with start").clone();
        let end_b = path_b.last().expect("path_b seeded with goal").clone();
        // Direct connection attempt (one-motion feasibility batch).
        let m = Motion::new(end_a.clone(), end_b.clone());
        if run_feasibility_batch(checker, &mut trace, &[m], step).is_none() {
            connected = true;
            break;
        }
        // Propose the next pose from the active end, rejecting proposals
        // that land inside obstacles (a colliding waypoint can never be
        // repaired by replanning around it). After a fully-stalled step,
        // widen the proposals with escalating exploration noise.
        let mut next = None;
        for _ in 0..5 {
            trace.push(TraceEvent::NnInference {
                macs: sampler.macs(),
            });
            stats.nn_calls += 1;
            phase_macs += sampler.macs();
            let proposal = sampler.next_pose(&end_a, &end_b);
            let candidate = if stall_streak > 0 {
                let amp = cfg.replan_noise * stall_streak as f32;
                robot.clamp_config(&JointConfig::new(
                    proposal
                        .as_slice()
                        .iter()
                        .map(|&v| v + rng.gen_range(-amp..=amp))
                        .collect(),
                ))
            } else {
                proposal
            };
            if !checker.check_pose(&candidate) {
                next = Some(candidate);
                break;
            }
        }
        trace.push(TraceEvent::Controller { instructions: 300 });
        if let Some(next) = next {
            path_a.push(next);
            stall_streak = 0;
        } else {
            stall_streak += 1;
            if stall_streak >= cfg.max_stall_streak.max(1) {
                phase1_failure = Some(PlanFailure::Stalled);
                break;
            }
        }
        std::mem::swap(&mut path_a, &mut path_b);
    }
    drop(phase1);
    let mut phase1_ops = checker.stats().delta_since(&mark).to_ops();
    phase1_ops.mlp_macs = phase_macs;
    ledger.bill("phase1_neural", phase1_ops);
    if !connected {
        stats.cd_queries = checker.stats().pose_queries - cd_before;
        return PlanOutcome {
            path: None,
            trace,
            stats,
            failure: Some(phase1_failure.unwrap_or(PlanFailure::NotConnected)),
            ledger,
        };
    }
    path_b.reverse();
    let mut path: Vec<JointConfig> = path_a;
    path.extend(path_b);
    // Re-orient: the swapping may have left `start` at the back.
    if path.first() != Some(start) {
        path.reverse();
    }
    dedup_consecutive(&mut path);
    stats.coarse_waypoints = path.len();

    // --- Phase 2: feasibility checking + neural replanning. ---
    // The guard also closes on the early returns inside the loop.
    let phase2 = mp_telemetry::span("planner", "phase2_replan");
    let mark = checker.stats();
    let mut phase_macs = 0u64;
    let mut attempts = cfg.replan_attempts;
    let mut consecutive_failures = 0u32;
    let mut last_bad = usize::MAX;
    loop {
        if let Some(r) = cfg
            .budget
            .exceeded(checker.stats().pose_queries - cd_before, stats.nn_calls)
        {
            stats.cd_queries = checker.stats().pose_queries - cd_before;
            let mut phase2_ops = checker.stats().delta_since(&mark).to_ops();
            phase2_ops.mlp_macs = phase_macs;
            ledger.bill("phase2_replan", phase2_ops);
            return PlanOutcome {
                path: None,
                trace,
                stats,
                failure: Some(PlanFailure::BudgetExhausted(r)),
                ledger,
            };
        }
        let motions: Vec<Motion> = path
            .windows(2)
            .map(|w| Motion::new(w[0].clone(), w[1].clone()))
            .collect();
        match run_feasibility_batch(checker, &mut trace, &motions, step) {
            None => break, // whole path feasible
            Some(bad) => {
                if attempts == 0 || path.len() >= cfg.max_waypoints {
                    stats.cd_queries = checker.stats().pose_queries - cd_before;
                    let mut phase2_ops = checker.stats().delta_since(&mark).to_ops();
                    phase2_ops.mlp_macs = phase_macs;
                    ledger.bill("phase2_replan", phase2_ops);
                    return PlanOutcome {
                        path: None,
                        trace,
                        stats,
                        failure: Some(PlanFailure::ReplanExhausted),
                        ledger,
                    };
                }
                attempts -= 1;
                stats.replans += 1;
                // Neural replanning: propose a detour waypoint between the
                // endpoints of the infeasible segment. The exploration
                // noise escalates while repairs keep failing on the same
                // segment (MPNet's stochastic re-sampling role).
                consecutive_failures = if bad == last_bad {
                    consecutive_failures + 1
                } else {
                    0
                };
                last_bad = bad;
                trace.push(TraceEvent::NnInference {
                    macs: sampler.macs(),
                });
                stats.nn_calls += 1;
                phase_macs += sampler.macs();
                let amp = cfg.replan_noise * (1.0 + consecutive_failures as f32 * 0.5);
                let mut detour = None;
                for _ in 0..5 {
                    let proposal = sampler.next_pose(&path[bad], &path[bad + 1]);
                    let candidate = robot.clamp_config(&JointConfig::new(
                        proposal
                            .as_slice()
                            .iter()
                            .map(|&v| v + rng.gen_range(-amp..=amp))
                            .collect(),
                    ));
                    if !checker.check_pose(&candidate) {
                        detour = Some(candidate);
                        break;
                    }
                }
                let Some(detour) = detour else { continue };
                trace.push(TraceEvent::Controller { instructions: 500 });
                // A repair replaces a previously inserted detour for this
                // segment rather than growing the path unboundedly.
                if consecutive_failures > 0 && bad + 1 < path.len() - 1 {
                    path[bad + 1] = detour;
                } else {
                    path.insert(bad + 1, detour);
                }
                dedup_consecutive(&mut path);
            }
        }
    }

    drop(phase2);
    let mut phase2_ops = checker.stats().delta_since(&mark).to_ops();
    phase2_ops.mlp_macs = phase_macs;
    ledger.bill("phase2_replan", phase2_ops);

    // --- Phase 3: path optimization (greedy shortcutting, §2.1). ---
    if cfg.shortcut {
        let _phase3 = mp_telemetry::span("planner", "phase3_shortcut");
        let mark = checker.stats();
        let before = path.len();
        greedy_shortcut(checker, &mut trace, &mut path, step);
        stats.shortcut_removed = before - path.len();
        ledger.bill(
            "phase3_shortcut",
            checker.stats().delta_since(&mark).to_ops(),
        );
    }

    trace.solved = true;
    stats.cd_queries = checker.stats().pose_queries - cd_before;
    PlanOutcome {
        path: Some(path),
        trace,
        stats,
        failure: None,
        ledger,
    }
}

/// Outcome of [`plan_with_fallback`]: the neural attempt plus, when it
/// failed recoverably, the classical fallback.
#[derive(Clone, Debug)]
pub struct FallbackPlanOutcome {
    /// The MPNet attempt (trace, stats, structured failure).
    pub mpnet: PlanOutcome,
    /// The RRT-Connect fallback run, when one was made.
    pub rrt: Option<RrtOutcome>,
    /// The path that will be executed, from whichever planner produced it.
    pub path: Option<Vec<JointConfig>>,
    /// Whether the executed path came from the degraded (fallback) mode.
    pub degraded: bool,
}

impl FallbackPlanOutcome {
    /// Whether any planner found a path.
    pub fn solved(&self) -> bool {
        self.path.is_some()
    }

    /// Total collision-detection queries across both attempts.
    pub fn total_cd_queries(&self) -> u64 {
        self.mpnet.stats.cd_queries + self.rrt.as_ref().map_or(0, |r| r.cd_queries)
    }
}

/// Graceful degradation: plan with MPNet and, on a recoverable failure
/// (stall, disconnection, replanning/budget exhaustion), fall back to
/// RRT-Connect with whatever collision-detection budget remains.
///
/// Invalid endpoints ([`PlanFailure::InvalidStart`]/[`InvalidGoal`]) are
/// not recoverable — no sampler can fix a colliding endpoint — so no
/// fallback runs for those.
///
/// [`InvalidGoal`]: PlanFailure::InvalidGoal
///
/// # Panics
///
/// Panics if start/goal DOF mismatch the checker's robot.
pub fn plan_with_fallback(
    checker: &mut impl CollisionChecker,
    sampler: &mut impl NeuralSampler,
    start: &JointConfig,
    goal: &JointConfig,
    cfg: &MpnetConfig,
    fallback: &RrtConfig,
) -> FallbackPlanOutcome {
    let mpnet = plan(checker, sampler, start, goal, cfg);
    if let Some(path) = mpnet.path.clone() {
        return FallbackPlanOutcome {
            mpnet,
            rrt: None,
            path: Some(path),
            degraded: false,
        };
    }
    match mpnet.failure {
        Some(PlanFailure::InvalidStart) | Some(PlanFailure::InvalidGoal) => {
            return FallbackPlanOutcome {
                mpnet,
                rrt: None,
                path: None,
                degraded: false,
            };
        }
        _ => {}
    }
    // Hand the fallback whatever CD budget the neural attempt left over.
    let mut rrt_cfg = *fallback;
    if let Some(cap) = cfg.budget.max_cd_queries {
        let remaining = cap.saturating_sub(mpnet.stats.cd_queries);
        if remaining == 0 {
            return FallbackPlanOutcome {
                mpnet,
                rrt: None,
                path: None,
                degraded: false,
            };
        }
        let fallback_cap = rrt_cfg
            .max_cd_queries
            .map_or(remaining, |c| c.min(remaining));
        rrt_cfg.max_cd_queries = Some(fallback_cap);
    }
    let out = rrt_connect(checker, start, goal, &rrt_cfg, cfg.seed ^ 0xFA11_BACC);
    let path = out.path.clone();
    let degraded = path.is_some();
    FallbackPlanOutcome {
        mpnet,
        rrt: Some(out),
        path,
        degraded,
    }
}

/// Runs a feasibility batch: records the batch into the trace and evaluates
/// it with sequential early-exit semantics, returning the index of the
/// first infeasible motion (or `None` if all are free).
fn run_feasibility_batch(
    checker: &mut impl CollisionChecker,
    trace: &mut PlannerTrace,
    motions: &[Motion],
    step: f32,
) -> Option<usize> {
    let descriptors: Vec<MotionDescriptor> = motions.iter().map(|m| m.descriptor(step)).collect();
    trace.push(TraceEvent::CdBatch {
        motions: descriptors,
        mode: FunctionMode::Feasibility,
    });
    for (i, m) in motions.iter().enumerate() {
        if mp_collision::check_motion(checker, m, step).colliding {
            return Some(i);
        }
    }
    None
}

/// Greedy shortcutting using the connectivity-test mode: for each anchor,
/// the pool of "skip ahead to j" motions is scheduled and the farthest
/// collision-free one wins (§2.1, Fig 3 "path optimization").
fn greedy_shortcut(
    checker: &mut impl CollisionChecker,
    trace: &mut PlannerTrace,
    path: &mut Vec<JointConfig>,
    step: f32,
) {
    let mut i = 0;
    while i + 2 < path.len() {
        // Candidate motions i -> j, farthest first.
        let candidates: Vec<usize> = ((i + 2)..path.len()).rev().collect();
        let motions: Vec<MotionDescriptor> = candidates
            .iter()
            .map(|&j| Motion::new(path[i].clone(), path[j].clone()).descriptor(step))
            .collect();
        trace.push(TraceEvent::CdBatch {
            motions,
            mode: FunctionMode::Connectivity,
        });
        let mut found = None;
        for &j in &candidates {
            let m = Motion::new(path[i].clone(), path[j].clone());
            if !mp_collision::check_motion(checker, &m, step).colliding {
                found = Some(j);
                break;
            }
        }
        if let Some(j) = found {
            // Poses between i and j are redundant.
            path.drain(i + 1..j);
        }
        i += 1;
    }
}

/// Removes consecutive duplicate waypoints.
fn dedup_consecutive(path: &mut Vec<JointConfig>) {
    path.dedup_by(|a, b| a.distance(b) < 1e-6);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::OracleSampler;
    use mp_collision::{check_path, SoftwareChecker};
    use mp_geometry::{Aabb, Vec3};
    use mp_octree::{Octree, Scene, SceneConfig};
    use mp_robot::RobotModel;

    fn far_goal(robot: &RobotModel) -> JointConfig {
        let mut g = robot.home();
        g.as_mut_slice()[0] += 1.6;
        g.as_mut_slice()[1] += 0.4;
        robot.clamp_config(&g)
    }

    #[test]
    fn plans_in_free_space() {
        let robot = RobotModel::jaco2();
        let mut checker = SoftwareChecker::new(robot.clone(), Octree::build(&[], 3));
        let mut sampler = OracleSampler::new(robot.clone(), 2);
        let out = plan(
            &mut checker,
            &mut sampler,
            &robot.home(),
            &far_goal(&robot),
            &MpnetConfig::default(),
        );
        assert!(out.solved());
        let path = out.path.unwrap();
        assert_eq!(path.first().unwrap(), &robot.home());
        assert_eq!(path.last().unwrap(), &far_goal(&robot));
        assert!(out.trace.solved);
        assert!(out.trace.cd_batches() >= 1);
    }

    #[test]
    fn ledger_partitions_the_attempts_cd_work_exactly() {
        let robot = RobotModel::jaco2();
        let scene = Scene::random(SceneConfig::paper(), 2);
        let mut checker = SoftwareChecker::new(robot.clone(), scene.octree());
        let mut sampler = OracleSampler::new(robot.clone(), 4)
            .with_noise(0.3)
            .with_step(0.5);
        let goal = far_goal(&robot);
        let (out, whole) = mp_collision::attributed(&mut checker, |c| {
            plan(
                c,
                &mut sampler,
                &robot.home(),
                &goal,
                &MpnetConfig::default(),
            )
        });
        let mut total = out.ledger.total_ops();
        // The ledger additionally bills NN MACs and the query upload,
        // which the checker never sees; the CD classes must partition the
        // checker's whole-run delta exactly.
        assert_eq!(total.dram_bytes, 768 + (4 * robot.dof() as u64) * 2);
        assert!(out.stats.nn_calls == 0 || total.mlp_macs > 0);
        total.mlp_macs = 0;
        total.dram_bytes = 0;
        assert_eq!(total, whole.to_ops());
        assert!(out.energy_pj() > 0.0);
    }

    #[test]
    fn found_paths_are_actually_feasible() {
        let robot = RobotModel::jaco2();
        let mut solved = 0;
        let mut total = 0;
        for seed in 0..4 {
            let scene = Scene::random(SceneConfig::paper(), seed);
            for (qi, q) in crate::queries::generate_queries(&robot, &scene, 3, seed + 50)
                .expect("paper scenes yield valid queries")
                .iter()
                .enumerate()
            {
                total += 1;
                let mut checker = SoftwareChecker::new(robot.clone(), scene.octree());
                let mut sampler = OracleSampler::new(robot.clone(), seed + 10 + qi as u64);
                let out = plan(
                    &mut checker,
                    &mut sampler,
                    &q.start,
                    &q.goal,
                    &MpnetConfig::default(),
                );
                if let Some(path) = &out.path {
                    solved += 1;
                    // Independent verification with a fresh checker.
                    let mut verifier = SoftwareChecker::new(robot.clone(), scene.octree());
                    assert_eq!(
                        check_path(&mut verifier, path, 0.04),
                        None,
                        "planner returned an infeasible path on seed {seed} query {qi}"
                    );
                    assert_eq!(path.first().unwrap(), &q.start);
                    assert_eq!(path.last().unwrap(), &q.goal);
                }
            }
        }
        assert!(
            solved * 3 >= total * 2,
            "only {solved}/{total} valid queries solved"
        );
    }

    #[test]
    fn planner_detours_around_blocking_obstacle() {
        let robot = RobotModel::planar_2dof();
        // Wall in front of the straight-line sweep.
        let block = Aabb::new(Vec3::new(0.55, 0.35, 0.0), Vec3::new(0.08, 0.08, 0.3));
        let tree = Octree::build(&[block], 5);
        let mut checker = SoftwareChecker::new(robot.clone(), tree);
        let start = JointConfig::new(vec![0.0, 0.0]);
        let goal = JointConfig::new(vec![1.5, 0.0]);
        // Straight line must be infeasible for the test to be meaningful.
        assert!(
            mp_collision::check_motion(
                &mut checker,
                &Motion::new(start.clone(), goal.clone()),
                0.04
            )
            .colliding
        );
        // The only detours fold the elbow *away* from the wall — a narrow
        // region the goal-directed sampler must discover stochastically
        // (real MPNet gets this from its learned distribution). Require at
        // least one success over a batch of seeds, and verify that success.
        let mut solved_any = false;
        for seed in 0..60 {
            let mut sampler = OracleSampler::new(robot.clone(), seed)
                .with_noise(0.6)
                .with_step(0.5);
            let cfg = MpnetConfig {
                replan_attempts: 30,
                max_expansion_steps: 60,
                seed,
                ..MpnetConfig::default()
            };
            let out = plan(&mut checker, &mut sampler, &start, &goal, &cfg);
            if let Some(path) = &out.path {
                assert!(path.len() >= 3, "a detour needs intermediate waypoints");
                let mut verifier = SoftwareChecker::new(robot.clone(), checker.octree().clone());
                assert_eq!(check_path(&mut verifier, path, 0.04), None);
                solved_any = true;
                break;
            }
        }
        assert!(
            solved_any,
            "planner failed on a solvable scene for every seed"
        );
    }

    #[test]
    fn shortcutting_shortens_paths() {
        let robot = RobotModel::jaco2();
        let mut checker = SoftwareChecker::new(robot.clone(), Octree::build(&[], 3));
        let mut noisy = OracleSampler::new(robot.clone(), 8)
            .with_noise(0.5)
            .with_step(0.4);
        let goal = far_goal(&robot);
        let with = plan(
            &mut checker,
            &mut noisy,
            &robot.home(),
            &goal,
            &MpnetConfig::default(),
        );
        let mut noisy2 = OracleSampler::new(robot.clone(), 8)
            .with_noise(0.5)
            .with_step(0.4);
        let without = plan(
            &mut checker,
            &mut noisy2,
            &robot.home(),
            &goal,
            &MpnetConfig {
                shortcut: false,
                ..MpnetConfig::default()
            },
        );
        let (Some(lw), Some(lo)) = (with.path_length(), without.path_length()) else {
            panic!("both plans should succeed in free space");
        };
        assert!(lw <= lo + 1e-4, "shortcut path {lw} longer than raw {lo}");
    }

    /// A sampler that always proposes the same (typically colliding) pose
    /// — the degenerate "collapsed network" regression case for stall
    /// detection.
    struct CollapsedSampler {
        pose: JointConfig,
    }

    impl crate::sampler::NeuralSampler for CollapsedSampler {
        fn next_pose(&mut self, _current: &JointConfig, _goal: &JointConfig) -> JointConfig {
            self.pose.clone()
        }
        fn macs(&self) -> u64 {
            1000
        }
    }

    #[test]
    fn collapsed_sampler_reports_stall_instead_of_burning_steps() {
        let robot = RobotModel::planar_2dof();
        // Obstacle covering the collapsed proposal's end effector.
        let bad = JointConfig::new(vec![0.9, 0.1]);
        let ee = mp_robot::fk::end_effector(&robot, &bad);
        // A wall also blocks the straight start->goal sweep, so phase 1
        // cannot connect directly.
        let block = Aabb::new(Vec3::new(0.55, 0.35, 0.0), Vec3::new(0.08, 0.08, 0.3));
        let tree = Octree::build(&[Aabb::new(ee, Vec3::splat(0.12)), block], 5);
        let mut checker = SoftwareChecker::new(robot.clone(), tree);
        let mut sampler = CollapsedSampler { pose: bad };
        let cfg = MpnetConfig {
            max_expansion_steps: 1000,
            // Noise escalation cannot save a sampler stuck inside a wide
            // obstacle every single time if noise is tiny.
            replan_noise: 0.01,
            ..MpnetConfig::default()
        };
        let out = plan(
            &mut checker,
            &mut sampler,
            &JointConfig::zeros(2),
            &JointConfig::new(vec![1.5, 0.0]),
            &cfg,
        );
        assert!(!out.solved());
        assert_eq!(out.failure, Some(PlanFailure::Stalled));
        // Bailed after max_stall_streak steps (x5 proposals), not 1000.
        assert!(
            out.stats.nn_calls <= 5 * u64::from(cfg.max_stall_streak),
            "burned {} NN calls before stalling out",
            out.stats.nn_calls
        );
    }

    #[test]
    fn stall_escalation_noise_can_rescue_a_streak() {
        // Same collapsed sampler, but with real escalation noise the
        // perturbed proposals eventually escape the obstacle.
        let robot = RobotModel::planar_2dof();
        let bad = JointConfig::new(vec![0.9, 0.1]);
        let ee = mp_robot::fk::end_effector(&robot, &bad);
        let tree = Octree::build(&[Aabb::new(ee, Vec3::splat(0.03))], 5);
        let mut checker = SoftwareChecker::new(robot.clone(), tree);
        let mut solved = false;
        for seed in 0..8 {
            let mut sampler = CollapsedSampler { pose: bad.clone() };
            let cfg = MpnetConfig {
                replan_noise: 0.8,
                max_stall_streak: 8,
                seed,
                ..MpnetConfig::default()
            };
            let out = plan(
                &mut checker,
                &mut sampler,
                &JointConfig::zeros(2),
                &JointConfig::new(vec![1.5, 0.0]),
                &cfg,
            );
            if out.solved() {
                solved = true;
                break;
            }
        }
        assert!(solved, "escalation noise never rescued the stall");
    }

    #[test]
    fn budget_exhaustion_is_reported_and_respected() {
        let robot = RobotModel::jaco2();
        let scene = Scene::random(SceneConfig::paper(), 3);
        let mut checker = SoftwareChecker::new(robot.clone(), scene.octree());
        let mut sampler = OracleSampler::new(robot.clone(), 1);
        let cfg = MpnetConfig {
            budget: PlanBudget {
                max_cd_queries: Some(5),
                ..PlanBudget::default()
            },
            ..MpnetConfig::default()
        };
        let out = plan(
            &mut checker,
            &mut sampler,
            &robot.home(),
            &far_goal(&robot),
            &cfg,
        );
        if let Some(PlanFailure::BudgetExhausted(r)) = out.failure {
            assert_eq!(r, BudgetResource::CdQueries);
            assert!(!out.solved());
        } else {
            // 5 queries can only suffice if the direct motion is free,
            // which these obstacle scenes make effectively impossible.
            panic!("expected budget exhaustion, got {:?}", out.failure);
        }
        // The nn-call and deadline budgets trip too.
        let nn_cfg = MpnetConfig {
            budget: PlanBudget {
                max_nn_calls: Some(0),
                ..PlanBudget::default()
            },
            ..MpnetConfig::default()
        };
        let out = plan(
            &mut checker,
            &mut sampler,
            &robot.home(),
            &far_goal(&robot),
            &nn_cfg,
        );
        assert!(matches!(
            out.failure,
            Some(PlanFailure::BudgetExhausted(BudgetResource::NnCalls))
                | Some(PlanFailure::BudgetExhausted(BudgetResource::CdQueries))
                | None
        ));
        let deadline = MpnetConfig {
            budget: PlanBudget::deadline_us(1.0),
            ..MpnetConfig::default()
        };
        let out = plan(
            &mut checker,
            &mut sampler,
            &robot.home(),
            &far_goal(&robot),
            &deadline,
        );
        assert_eq!(
            out.failure,
            Some(PlanFailure::BudgetExhausted(BudgetResource::ModeledTime))
        );
    }

    #[test]
    fn fallback_rescues_a_stalled_neural_planner() {
        let robot = RobotModel::planar_2dof();
        let bad = JointConfig::new(vec![0.9, 0.1]);
        let ee = mp_robot::fk::end_effector(&robot, &bad);
        let block = Aabb::new(Vec3::new(0.55, 0.35, 0.0), Vec3::new(0.08, 0.08, 0.3));
        let tree = Octree::build(&[Aabb::new(ee, Vec3::splat(0.12)), block], 5);
        let mut checker = SoftwareChecker::new(robot.clone(), tree);
        let mut sampler = CollapsedSampler { pose: bad };
        let cfg = MpnetConfig {
            replan_noise: 0.01,
            budget: PlanBudget {
                max_cd_queries: Some(50_000),
                ..PlanBudget::default()
            },
            ..MpnetConfig::default()
        };
        let out = plan_with_fallback(
            &mut checker,
            &mut sampler,
            &JointConfig::zeros(2),
            &JointConfig::new(vec![1.5, 0.0]),
            &cfg,
            &RrtConfig::default(),
        );
        assert_eq!(out.mpnet.failure, Some(PlanFailure::Stalled));
        assert!(out.solved(), "RRT-Connect should rescue this scene");
        assert!(out.degraded);
        let rrt_run = out.rrt.as_ref().expect("fallback ran");
        assert!(rrt_run.solved());
        // The fallback respected the remaining budget.
        assert!(out.total_cd_queries() <= 50_000 + 100);
        // And the path it returned is genuinely feasible.
        let mut verifier = SoftwareChecker::new(robot.clone(), checker.octree().clone());
        assert_eq!(
            check_path(&mut verifier, out.path.as_ref().unwrap(), 0.04),
            None
        );
    }

    #[test]
    fn fallback_skips_unrecoverable_endpoint_failures() {
        let robot = RobotModel::jaco2();
        let ee = mp_robot::fk::end_effector(&robot, &robot.home());
        let tree = Octree::build(&[Aabb::new(ee, Vec3::splat(0.1))], 5);
        let mut checker = SoftwareChecker::new(robot.clone(), tree);
        let mut sampler = OracleSampler::new(robot.clone(), 0);
        let out = plan_with_fallback(
            &mut checker,
            &mut sampler,
            &robot.home(),
            &far_goal(&robot),
            &MpnetConfig::default(),
            &RrtConfig::default(),
        );
        assert_eq!(out.mpnet.failure, Some(PlanFailure::InvalidStart));
        assert!(out.rrt.is_none(), "no fallback for a colliding endpoint");
        assert!(!out.solved());
    }

    #[test]
    fn colliding_endpoints_fail_fast() {
        let robot = RobotModel::jaco2();
        // Obstacle right on the home pose end effector.
        let ee = mp_robot::fk::end_effector(&robot, &robot.home());
        let tree = Octree::build(&[Aabb::new(ee, Vec3::splat(0.1))], 5);
        let mut checker = SoftwareChecker::new(robot.clone(), tree);
        let mut sampler = OracleSampler::new(robot.clone(), 0);
        let out = plan(
            &mut checker,
            &mut sampler,
            &robot.home(),
            &far_goal(&robot),
            &MpnetConfig::default(),
        );
        assert!(!out.solved());
        assert_eq!(out.trace.cd_batches(), 0); // failed before any batch
    }

    #[test]
    fn trace_contains_all_phase_kinds_on_success() {
        let robot = RobotModel::jaco2();
        let scene = Scene::random(SceneConfig::paper(), 1);
        let mut checker = SoftwareChecker::new(robot.clone(), scene.octree());
        let mut sampler = OracleSampler::new(robot.clone(), 3)
            .with_noise(0.3)
            .with_step(0.5);
        let out = plan(
            &mut checker,
            &mut sampler,
            &robot.home(),
            &far_goal(&robot),
            &MpnetConfig::default(),
        );
        if out.solved() {
            assert!(out.trace.nn_inferences() >= 1);
            let has_connectivity = out.trace.events.iter().any(|e| {
                matches!(
                    e,
                    TraceEvent::CdBatch {
                        mode: FunctionMode::Connectivity,
                        ..
                    }
                )
            });
            let has_feasibility = out.trace.events.iter().any(|e| {
                matches!(
                    e,
                    TraceEvent::CdBatch {
                        mode: FunctionMode::Feasibility,
                        ..
                    }
                )
            });
            assert!(has_feasibility);
            // Connectivity batches appear when the path had >2 waypoints.
            if out.stats.coarse_waypoints > 2 {
                assert!(has_connectivity);
            }
        }
    }
}
