//! Cross-query batched planning: lockstep tree growth over one validation
//! stream per scene.
//!
//! Sequential planning walks one query at a time, each with its own
//! checker, so every query pays the full setup cost — octree clone, FK
//! buffer warmup, cascade state — before its first collision check. The
//! batch engine amortizes all of that across the queries of a scene
//! (VAMP's "motions in microseconds" observation, applied across queries
//! instead of within one):
//!
//! * **One shared checker per scene.** All lanes validate through a single
//!   [`CollisionChecker`], so the flat octree, the FK scratch buffers and
//!   the hoisted cascade constants stay hot instead of being rebuilt per
//!   query. Per-lane work is attributed by differencing the shared
//!   counters around each lane's operations.
//! * **Lockstep growth.** Every round, each active lane computes its next
//!   pending extension (sample → nearest → steer — pure arithmetic on its
//!   own RNG stream), and the pending edges are then validated
//!   back-to-back as one stream through the shared rake validator.
//! * **Rake validation.** Edges are discretized a fixed-width block of
//!   poses at a time ([`mp_collision::RAKE_WIDTH`]) with early exit on the
//!   first colliding lane, via [`mp_collision::RakeValidator`].
//!
//! **Bit-identity contract:** every lane owns its RNG stream, its stats
//! and its trees, and validation is deterministic, so interleaving lanes
//! changes *when* a lane's checks run but not *what* they compute. Each
//! lane's outcome — path, node count, CD queries, and the full
//! [`CdStats`] breakdown down to multiplication counts — is identical to
//! running the sequential planner with a fresh checker on the same seed.
//! The differential tests in `tests/batch_props.rs` pin this for both the
//! f32 software chain and the Q3.12 CECDU chain.

use mp_collision::{CdStats, CollisionChecker, RakeValidator};
use mp_robot::{JointConfig, Motion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::mpnet::{plan, MpnetConfig, PlanBudget, PlanOutcome, CD_QUERY_MODELED_US};
use crate::rrt::{dedup, steer, RrtConfig, RrtOutcome, Tree};
use crate::sampler::NeuralSampler;
use crate::tiers::{QualityTier, TierOutcome};

/// One planning query in a batch: endpoints plus the lane's private seed.
#[derive(Clone, Debug)]
pub struct BatchQuery {
    /// Start configuration.
    pub start: JointConfig,
    /// Goal configuration.
    pub goal: JointConfig,
    /// Seed of the lane's RNG stream (same meaning as the sequential
    /// planners' `seed` argument).
    pub seed: u64,
}

/// Per-lane result of a batched run: the planner outcome plus the CD work
/// the lane spent, attributed from the shared checker.
#[derive(Clone, Debug)]
pub struct BatchLaneOutcome {
    /// The planner outcome (identical to the sequential run on this seed).
    pub outcome: RrtOutcome,
    /// CD work attributed to this lane (identical to the stats a fresh
    /// per-query checker would have accumulated).
    pub stats: CdStats,
}

impl BatchLaneOutcome {
    /// Dynamic collision-detection energy this lane spent, in picojoules
    /// (priced from [`BatchLaneOutcome::stats`] by `mp_sim::energy`).
    pub fn energy_pj(&self) -> f64 {
        self.stats.energy_pj()
    }
}

/// Runs `f` against the shared checker and folds the counter delta into
/// the lane's private stats (the shared snapshot/delta helper from
/// `mp_collision`).
fn attributed<C: CollisionChecker, T>(
    checker: &mut C,
    lane_stats: &mut CdStats,
    f: impl FnOnce(&mut C) -> T,
) -> T {
    let (out, delta) = mp_collision::attributed(checker, f);
    lane_stats.absorb(delta);
    out
}

/// Per-lane RRT-Connect state, advanced one expansion round at a time.
struct ConnectLane {
    start: JointConfig,
    goal: JointConfig,
    rng: StdRng,
    ta: Tree,
    tb: Tree,
    a_is_start: bool,
    stats: CdStats,
    done: Option<RrtOutcome>,
}

impl ConnectLane {
    fn new(q: &BatchQuery) -> ConnectLane {
        ConnectLane {
            start: q.start.clone(),
            goal: q.goal.clone(),
            rng: StdRng::seed_from_u64(q.seed),
            ta: Tree::new(q.start.clone()),
            tb: Tree::new(q.goal.clone()),
            a_is_start: true,
            stats: CdStats::default(),
            done: None,
        }
    }

    fn out_of_budget(&self, cfg: &RrtConfig) -> bool {
        cfg.max_cd_queries
            .is_some_and(|cap| self.stats.pose_queries >= cap)
    }

    fn finish(&mut self, path: Option<Vec<JointConfig>>) {
        self.done = Some(RrtOutcome {
            path,
            nodes: self.ta.len() + self.tb.len(),
            cd_queries: self.stats.pose_queries,
        });
    }

    /// Endpoint validation, with the sequential planner's short-circuit:
    /// a colliding start never checks the goal.
    fn validate_endpoints(&mut self, checker: &mut impl CollisionChecker) {
        let (start, goal) = (self.start.clone(), self.goal.clone());
        let invalid = attributed(checker, &mut self.stats, |c| {
            c.check_pose(&start) || c.check_pose(&goal)
        });
        if invalid {
            self.done = Some(RrtOutcome {
                path: None,
                nodes: 0,
                cd_queries: self.stats.pose_queries,
            });
        }
    }

    /// The gather half of one round: termination checks, then the lane's
    /// pending extension edge (pure arithmetic — no validation yet).
    fn gather(&mut self, robot: &mp_robot::RobotModel, cfg: &RrtConfig) -> Option<PendingEdge> {
        if self.done.is_some() {
            return None;
        }
        if self.ta.len() + self.tb.len() >= cfg.max_nodes || self.out_of_budget(cfg) {
            self.finish(None);
            return None;
        }
        let target = robot.sample_config(&mut self.rng);
        let near_a = self.ta.nearest(&target);
        let new_a = steer(self.ta.node(near_a), &target, cfg.steer_step);
        let edge = Motion::new(self.ta.node(near_a).clone(), new_a.clone());
        Some(PendingEdge {
            edge,
            new_a,
            near_a,
        })
    }

    /// The advance half: validate the pending edge through the shared
    /// stream and, when it is free, run the greedy connect loop to
    /// completion (its edges are data-dependent, so they join the stream
    /// immediately after the extension edge).
    fn advance(
        &mut self,
        checker: &mut impl CollisionChecker,
        rake: &mut RakeValidator,
        cfg: &RrtConfig,
        pending: PendingEdge,
    ) {
        let PendingEdge {
            edge,
            new_a,
            near_a,
        } = pending;
        let colliding = attributed(checker, &mut self.stats, |c| {
            rake.check_motion(c, &edge, cfg.cspace_step).colliding
        });
        if !colliding {
            self.ta.push(new_a.clone(), near_a);
            // Greedily connect tree B toward the new node.
            loop {
                if self.out_of_budget(cfg) {
                    break;
                }
                let near_b = self.tb.nearest(&new_a);
                let step_b = steer(self.tb.node(near_b), &new_a, cfg.steer_step);
                let edge_b = Motion::new(self.tb.node(near_b).clone(), step_b.clone());
                let colliding = attributed(checker, &mut self.stats, |c| {
                    rake.check_motion(c, &edge_b, cfg.cspace_step).colliding
                });
                if colliding {
                    break;
                }
                self.tb.push(step_b.clone(), near_b);
                if step_b.distance(&new_a) < 1e-4 {
                    // Trees met: assemble the path.
                    let pa = self.ta.path_to_root(self.ta.len() - 1);
                    let pb = self.tb.path_to_root(self.tb.len() - 1);
                    let mut path = if self.a_is_start {
                        pa.clone()
                    } else {
                        pb.clone()
                    };
                    let mut tail = if self.a_is_start { pb } else { pa };
                    tail.reverse();
                    path.extend(tail);
                    dedup(&mut path);
                    self.finish(Some(path));
                    return;
                }
            }
        }
        std::mem::swap(&mut self.ta, &mut self.tb);
        self.a_is_start = !self.a_is_start;
    }
}

struct PendingEdge {
    edge: Motion,
    new_a: JointConfig,
    near_a: usize,
}

/// Grows an RRT-Connect tree pair per query in lockstep, validating every
/// lane's pending edges through one shared checker + rake stream.
///
/// Lane `i`'s outcome and stats are bit-identical to
/// [`rrt_connect`](crate::rrt::rrt_connect) on `(queries[i].start,
/// queries[i].goal, queries[i].seed)` with a fresh checker.
///
/// # Panics
///
/// Panics if a query's DOF mismatches the checker's robot.
pub fn rrt_connect_batch(
    checker: &mut impl CollisionChecker,
    queries: &[BatchQuery],
    cfg: &RrtConfig,
) -> Vec<BatchLaneOutcome> {
    let span = mp_telemetry::span_args(
        "planner",
        "rrt_connect_batch",
        mp_telemetry::arg1("lanes", mp_telemetry::ArgValue::U64(queries.len() as u64)),
    );
    let robot = checker.robot().clone();
    let mut rake = RakeValidator::new();
    let mut lanes: Vec<ConnectLane> = queries.iter().map(ConnectLane::new).collect();
    // Round 0: endpoint validation, streamed across lanes.
    for lane in &mut lanes {
        lane.validate_endpoints(checker);
    }
    // Lockstep rounds: gather all pending extension edges, then stream
    // their validation (plus each lane's data-dependent connect edges).
    loop {
        let pending: Vec<(usize, PendingEdge)> = lanes
            .iter_mut()
            .enumerate()
            .filter_map(|(i, lane)| lane.gather(&robot, cfg).map(|p| (i, p)))
            .collect();
        if pending.is_empty() && lanes.iter().all(|l| l.done.is_some()) {
            break;
        }
        for (i, edge) in pending {
            lanes[i].advance(checker, &mut rake, cfg, edge);
        }
    }
    let solved = lanes
        .iter()
        .filter(|l| matches!(&l.done, Some(o) if o.solved()))
        .count();
    span.end_with(|| mp_telemetry::arg1("solved", mp_telemetry::ArgValue::U64(solved as u64)));
    lanes
        .into_iter()
        .map(|l| BatchLaneOutcome {
            stats: l.stats,
            outcome: l.done.expect("all lanes terminated"),
        })
        .collect()
}

/// Per-lane plain-RRT state (goal-biased single tree).
struct RrtLane {
    goal: JointConfig,
    rng: StdRng,
    tree: Tree,
    stats: CdStats,
    done: Option<RrtOutcome>,
}

impl RrtLane {
    fn out_of_budget(&self, cfg: &RrtConfig) -> bool {
        cfg.max_cd_queries
            .is_some_and(|cap| self.stats.pose_queries >= cap)
    }
}

/// Grows one goal-biased RRT per query in lockstep over a shared checker
/// stream. Lane `i` is bit-identical to [`rrt`](crate::rrt::rrt) on the
/// same `(start, goal, seed)` with a fresh checker.
///
/// # Panics
///
/// Panics if a query's DOF mismatches the checker's robot.
pub fn rrt_batch(
    checker: &mut impl CollisionChecker,
    queries: &[BatchQuery],
    cfg: &RrtConfig,
) -> Vec<BatchLaneOutcome> {
    let robot = checker.robot().clone();
    let mut rake = RakeValidator::new();
    let mut lanes: Vec<RrtLane> = queries
        .iter()
        .map(|q| {
            let mut lane = RrtLane {
                goal: q.goal.clone(),
                rng: StdRng::seed_from_u64(q.seed),
                tree: Tree::new(q.start.clone()),
                stats: CdStats::default(),
                done: None,
            };
            let (start, goal) = (q.start.clone(), q.goal.clone());
            let invalid = attributed(checker, &mut lane.stats, |c| {
                c.check_pose(&start) || c.check_pose(&goal)
            });
            if invalid {
                lane.done = Some(RrtOutcome {
                    path: None,
                    nodes: 0,
                    cd_queries: lane.stats.pose_queries,
                });
            }
            lane
        })
        .collect();
    loop {
        let mut progressed = false;
        for lane in lanes.iter_mut().filter(|l| l.done.is_none()) {
            progressed = true;
            if lane.tree.len() >= cfg.max_nodes || lane.out_of_budget(cfg) {
                lane.done = Some(RrtOutcome {
                    path: None,
                    nodes: lane.tree.len(),
                    cd_queries: lane.stats.pose_queries,
                });
                continue;
            }
            let target = if lane.rng.gen::<f32>() < cfg.goal_bias {
                lane.goal.clone()
            } else {
                robot.sample_config(&mut lane.rng)
            };
            let near = lane.tree.nearest(&target);
            let new = steer(lane.tree.node(near), &target, cfg.steer_step);
            let edge = Motion::new(lane.tree.node(near).clone(), new.clone());
            let colliding = attributed(checker, &mut lane.stats, |c| {
                rake.check_motion(c, &edge, cfg.cspace_step).colliding
            });
            if colliding {
                continue;
            }
            lane.tree.push(new.clone(), near);
            // Goal connection attempt (short-circuit preserved: only
            // validated when the new node is within one steering step).
            let goal = lane.goal.clone();
            let to_goal = Motion::new(new.clone(), goal.clone());
            let connected = new.distance(&goal) <= cfg.steer_step
                && !attributed(checker, &mut lane.stats, |c| {
                    rake.check_motion(c, &to_goal, cfg.cspace_step).colliding
                });
            if connected {
                let mut path = lane.tree.path_to_root(lane.tree.len() - 1);
                path.push(goal);
                lane.done = Some(RrtOutcome {
                    path: Some(path),
                    nodes: lane.tree.len(),
                    cd_queries: lane.stats.pose_queries,
                });
            }
        }
        if !progressed {
            break;
        }
    }
    lanes
        .into_iter()
        .map(|l| BatchLaneOutcome {
            stats: l.stats,
            outcome: l.done.expect("all lanes terminated"),
        })
        .collect()
}

/// Per-lane result of a batched MPNet stream.
#[derive(Clone, Debug)]
pub struct BatchPlanOutcome {
    /// The MPNet outcome (identical to the sequential run).
    pub outcome: PlanOutcome,
    /// CD work attributed to this lane.
    pub stats: CdStats,
}

impl BatchPlanOutcome {
    /// Dynamic collision-detection energy this lane spent, in picojoules.
    pub fn energy_pj(&self) -> f64 {
        self.stats.energy_pj()
    }
}

/// Streams MPNet queries through one shared checker per scene.
///
/// MPNet's phase structure is data-dependent (expansion, replanning and
/// shortcutting lengths all depend on earlier verdicts), so lanes are
/// resolved one after another rather than interleaved — the cross-query
/// win here is the shared scene state: one octree, one set of FK/traversal
/// buffers, hot cascade constants. Outcomes are bit-identical to calling
/// [`plan`] per query with a fresh checker because the planner only ever
/// reads its own counter *deltas*.
pub fn mpnet_stream<S: NeuralSampler>(
    checker: &mut impl CollisionChecker,
    queries: &[(JointConfig, JointConfig, MpnetConfig)],
    mut sampler_for: impl FnMut(usize) -> S,
) -> Vec<BatchPlanOutcome> {
    queries
        .iter()
        .enumerate()
        .map(|(i, (start, goal, cfg))| {
            let mut sampler = sampler_for(i);
            let mut stats = CdStats::default();
            let outcome = attributed(checker, &mut stats, |c| {
                plan(c, &mut sampler, start, goal, cfg)
            });
            BatchPlanOutcome { outcome, stats }
        })
        .collect()
}

/// Batched [`plan_at_tier_with_path`](crate::tiers::plan_at_tier_with_path):
/// plans every query of a scene at `tier` over one shared checker. The
/// neural tiers stream lanes through [`mpnet_stream`]; the classical tiers
/// grow their trees in lockstep through [`rrt_connect_batch`]. Per-lane
/// outcomes and paths are bit-identical to the sequential entry point.
pub fn plan_at_tier_batch<S: NeuralSampler>(
    checker: &mut impl CollisionChecker,
    queries: &[BatchQuery],
    tier: QualityTier,
    mut sampler_for: impl FnMut(usize) -> S,
) -> Vec<(TierOutcome, Option<Vec<JointConfig>>)> {
    let span = mp_telemetry::span_args(
        "planner",
        "plan",
        mp_telemetry::arg2(
            "tier",
            mp_telemetry::ArgValue::Str(tier.label()),
            "lanes",
            mp_telemetry::ArgValue::U64(queries.len() as u64),
        ),
    );
    let out: Vec<(TierOutcome, Option<Vec<JointConfig>>)> = match tier.mpnet_config(0) {
        Some(_) => {
            let mpnet_queries: Vec<(JointConfig, JointConfig, MpnetConfig)> = queries
                .iter()
                .map(|q| {
                    let cfg = tier
                        .mpnet_config(q.seed)
                        .expect("neural tier has an MPNet config");
                    (q.start.clone(), q.goal.clone(), cfg)
                })
                .collect();
            mpnet_stream(checker, &mpnet_queries, &mut sampler_for)
                .into_iter()
                .map(|r| {
                    let energy_pj = r.energy_pj();
                    (
                        TierOutcome {
                            tier,
                            solved: r.outcome.solved(),
                            cd_queries: r.outcome.stats.cd_queries,
                            nn_calls: r.outcome.stats.nn_calls,
                            modeled_us: PlanBudget::modeled_us(
                                r.outcome.stats.cd_queries,
                                r.outcome.stats.nn_calls,
                            ),
                            energy_pj,
                        },
                        r.outcome.path,
                    )
                })
                .collect()
        }
        None => rrt_connect_batch(checker, queries, &tier.rrt_config())
            .into_iter()
            .map(|r| {
                let energy_pj = r.energy_pj();
                (
                    TierOutcome {
                        tier,
                        solved: r.outcome.solved(),
                        cd_queries: r.outcome.cd_queries,
                        nn_calls: 0,
                        modeled_us: r.outcome.cd_queries as f64 * CD_QUERY_MODELED_US,
                        energy_pj,
                    },
                    r.outcome.path,
                )
            })
            .collect(),
    };
    let solved = out.iter().filter(|(o, _)| o.solved).count();
    span.end_with(|| mp_telemetry::arg1("solved", mp_telemetry::ArgValue::U64(solved as u64)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::generate_queries;
    use crate::rrt::{rrt, rrt_connect};
    use mp_collision::SoftwareChecker;
    use mp_octree::{Scene, SceneConfig};
    use mp_robot::RobotModel;

    fn scene_queries(seed: u64, n: usize) -> (Scene, Vec<BatchQuery>) {
        let robot = RobotModel::jaco2();
        let scene = Scene::random(SceneConfig::paper(), seed);
        let queries = generate_queries(&robot, &scene, n, seed + 40)
            .expect("paper scenes yield valid queries")
            .into_iter()
            .enumerate()
            .map(|(i, q)| BatchQuery {
                start: q.start,
                goal: q.goal,
                seed: seed * 100 + i as u64,
            })
            .collect();
        (scene, queries)
    }

    #[test]
    fn batched_rrt_connect_matches_sequential_lane_for_lane() {
        let robot = RobotModel::jaco2();
        let (scene, queries) = scene_queries(1, 3);
        let cfg = RrtConfig::default();
        let mut shared = SoftwareChecker::new(robot.clone(), scene.octree());
        let batched = rrt_connect_batch(&mut shared, &queries, &cfg);
        for (q, b) in queries.iter().zip(&batched) {
            let mut fresh = SoftwareChecker::new(robot.clone(), scene.octree());
            let seq = rrt_connect(&mut fresh, &q.start, &q.goal, &cfg, q.seed);
            assert_eq!(seq.path, b.outcome.path);
            assert_eq!(seq.nodes, b.outcome.nodes);
            assert_eq!(seq.cd_queries, b.outcome.cd_queries);
            assert_eq!(fresh.stats(), b.stats, "full CdStats must match");
        }
        // The shared checker accumulated exactly the sum of the lanes.
        let mut sum = CdStats::default();
        for b in &batched {
            sum.absorb(b.stats);
        }
        assert_eq!(shared.stats(), sum);
    }

    #[test]
    fn batched_rrt_matches_sequential_lane_for_lane() {
        let robot = RobotModel::jaco2();
        let (scene, queries) = scene_queries(2, 2);
        let cfg = RrtConfig::default();
        let mut shared = SoftwareChecker::new(robot.clone(), scene.octree());
        let batched = rrt_batch(&mut shared, &queries, &cfg);
        for (q, b) in queries.iter().zip(&batched) {
            let mut fresh = SoftwareChecker::new(robot.clone(), scene.octree());
            let seq = rrt(&mut fresh, &q.start, &q.goal, &cfg, q.seed);
            assert_eq!(seq.path, b.outcome.path);
            assert_eq!(seq.cd_queries, b.outcome.cd_queries);
            assert_eq!(fresh.stats(), b.stats);
        }
    }

    #[test]
    fn batched_tiers_match_sequential_entry_point() {
        use crate::sampler::OracleSampler;
        use crate::tiers::plan_at_tier_with_path;
        use mp_octree::Octree;
        let robot = RobotModel::jaco2();
        let (scene, queries) = scene_queries(3, 2);
        for tier in QualityTier::LADDER {
            let tree = Octree::build(scene.obstacles(), tier.octree_depth());
            let mut shared = SoftwareChecker::new(robot.clone(), tree.clone());
            let batched = plan_at_tier_batch(&mut shared, &queries, tier, |i| {
                OracleSampler::new(robot.clone(), queries[i].seed)
            });
            for (q, (out, path)) in queries.iter().zip(&batched) {
                let mut fresh = SoftwareChecker::new(robot.clone(), tree.clone());
                let mut sampler = OracleSampler::new(robot.clone(), q.seed);
                let (seq_out, seq_path) = plan_at_tier_with_path(
                    &mut fresh,
                    &mut sampler,
                    &q.start,
                    &q.goal,
                    tier,
                    q.seed,
                );
                assert_eq!(&seq_out, out, "{} outcome differs", tier.label());
                assert_eq!(&seq_path, path, "{} path differs", tier.label());
            }
        }
    }
}
