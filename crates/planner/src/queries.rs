//! Benchmark query generation (§6: "100 pairs of start and end goals per
//! each environmental scenario").

use mp_collision::{CollisionChecker, SoftwareChecker};
use mp_octree::Scene;
use mp_robot::{JointConfig, RobotModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A start/goal pair for one motion-planning query.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanningQuery {
    /// Start configuration (collision-free).
    pub start: JointConfig,
    /// Goal configuration (collision-free).
    pub goal: JointConfig,
}

/// Generates `count` valid (collision-free, well-separated) start/goal
/// pairs for a robot in a scene. Deterministic in `seed`.
///
/// # Panics
///
/// Panics if valid pairs cannot be found within a generous sampling budget
/// (which indicates a degenerate scene).
pub fn generate_queries(
    robot: &RobotModel,
    scene: &Scene,
    count: usize,
    seed: u64,
) -> Vec<PlanningQuery> {
    let mut checker = SoftwareChecker::new(robot.clone(), scene.octree());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    let min_sep = 1.0; // radians L2: make queries non-trivial
    let mut budget = count * 400;
    while out.len() < count {
        assert!(budget > 0, "could not sample valid queries for this scene");
        budget -= 1;
        let start = robot.sample_config(&mut rng);
        if checker.check_pose(&start) {
            continue;
        }
        let goal = robot.sample_config(&mut rng);
        if checker.check_pose(&goal) || start.distance(&goal) < min_sep {
            continue;
        }
        out.push(PlanningQuery { start, goal });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_octree::SceneConfig;

    #[test]
    fn queries_are_valid_and_separated() {
        let robot = RobotModel::jaco2();
        let scene = Scene::random(SceneConfig::paper(), 0);
        let qs = generate_queries(&robot, &scene, 10, 42);
        assert_eq!(qs.len(), 10);
        let mut checker = SoftwareChecker::new(robot.clone(), scene.octree());
        for q in &qs {
            assert!(!checker.check_pose(&q.start));
            assert!(!checker.check_pose(&q.goal));
            assert!(q.start.distance(&q.goal) >= 1.0);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let robot = RobotModel::baxter();
        let scene = Scene::random(SceneConfig::paper(), 1);
        let a = generate_queries(&robot, &scene, 5, 7);
        let b = generate_queries(&robot, &scene, 5, 7);
        assert_eq!(a, b);
        let c = generate_queries(&robot, &scene, 5, 8);
        assert_ne!(a, c);
    }
}
