//! Benchmark query generation (§6: "100 pairs of start and end goals per
//! each environmental scenario").

use mp_collision::{CollisionChecker, SoftwareChecker};
use mp_octree::Scene;
use mp_robot::{JointConfig, RobotModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A start/goal pair for one motion-planning query.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanningQuery {
    /// Start configuration (collision-free).
    pub start: JointConfig,
    /// Goal configuration (collision-free).
    pub goal: JointConfig,
}

/// Query generation failed: the scene is too cluttered (or degenerate) to
/// sample enough valid start/goal pairs, even after reseeded retries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryGenError {
    /// Pairs requested.
    pub requested: usize,
    /// Valid pairs found on the best attempt.
    pub found: usize,
    /// Sampling attempts made (including reseeded retries).
    pub attempts: u32,
}

impl core::fmt::Display for QueryGenError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "could not sample {} valid queries for this scene (best attempt \
             found {} over {} reseeded tries)",
            self.requested, self.found, self.attempts
        )
    }
}

impl std::error::Error for QueryGenError {}

/// Reseeded retries before [`generate_queries`] gives up.
const RESEED_ATTEMPTS: u32 = 3;

/// Generates `count` valid (collision-free, well-separated) start/goal
/// pairs for a robot in a scene. Deterministic in `seed`.
///
/// Each attempt gets a generous sampling budget; if a scene is so
/// cluttered that the budget runs out, the generator retries with a
/// reseeded RNG up to [`RESEED_ATTEMPTS`] times before reporting
/// [`QueryGenError`].
pub fn generate_queries(
    robot: &RobotModel,
    scene: &Scene,
    count: usize,
    seed: u64,
) -> Result<Vec<PlanningQuery>, QueryGenError> {
    let mut checker = SoftwareChecker::new(robot.clone(), scene.octree());
    let mut best: Vec<PlanningQuery> = Vec::new();
    for attempt in 0..RESEED_ATTEMPTS {
        // SplitMix-style reseed keeps attempt 0 identical to the historic
        // stream (offset 0) while decorrelating retries.
        let attempt_seed =
            seed.wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = StdRng::seed_from_u64(attempt_seed);
        let mut out = Vec::with_capacity(count);
        let min_sep = 1.0; // radians L2: make queries non-trivial
        let mut budget = count * 400;
        while out.len() < count && budget > 0 {
            budget -= 1;
            let start = robot.sample_config(&mut rng);
            if checker.check_pose(&start) {
                continue;
            }
            let goal = robot.sample_config(&mut rng);
            if checker.check_pose(&goal) || start.distance(&goal) < min_sep {
                continue;
            }
            out.push(PlanningQuery { start, goal });
        }
        if out.len() == count {
            return Ok(out);
        }
        if out.len() > best.len() {
            best = out;
        }
    }
    Err(QueryGenError {
        requested: count,
        found: best.len(),
        attempts: RESEED_ATTEMPTS,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_geometry::{Aabb, Vec3};
    use mp_octree::SceneConfig;

    #[test]
    fn queries_are_valid_and_separated() {
        let robot = RobotModel::jaco2();
        let scene = Scene::random(SceneConfig::paper(), 0);
        let qs = generate_queries(&robot, &scene, 10, 42).expect("paper scene is solvable");
        assert_eq!(qs.len(), 10);
        let mut checker = SoftwareChecker::new(robot.clone(), scene.octree());
        for q in &qs {
            assert!(!checker.check_pose(&q.start));
            assert!(!checker.check_pose(&q.goal));
            assert!(q.start.distance(&q.goal) >= 1.0);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let robot = RobotModel::baxter();
        let scene = Scene::random(SceneConfig::paper(), 1);
        let a = generate_queries(&robot, &scene, 5, 7).unwrap();
        let b = generate_queries(&robot, &scene, 5, 7).unwrap();
        assert_eq!(a, b);
        let c = generate_queries(&robot, &scene, 5, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn degenerate_scene_errors_instead_of_panicking() {
        // A wall of obstacles filling the whole workspace: every sampled
        // pose collides, so no budget or reseed can help.
        let robot = RobotModel::jaco2();
        let scene = Scene::from_obstacles(vec![Aabb::new(Vec3::splat(0.0), Vec3::splat(3.0))], 3);
        let err = generate_queries(&robot, &scene, 4, 0).unwrap_err();
        assert_eq!(err.requested, 4);
        assert_eq!(err.found, 0);
        assert_eq!(err.attempts, RESEED_ATTEMPTS);
        // And the error formats usefully.
        assert!(err.to_string().contains("4 valid queries"));
    }
}
