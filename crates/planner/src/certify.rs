//! Independent plan certification against silent data corruption.
//!
//! Every robustness layer below this one defends against *detected*
//! faults: parity catches storage flips, watchdogs catch dropped results,
//! voting catches disagreement someone bothered to look for. A CDU that
//! silently returns a wrong-but-plausible "no collision" verdict defeats
//! them all — the unsafe plan flows straight into `Completed`.
//!
//! [`PlanCertifier`] closes that gap with an end-to-end check: before a
//! plan ships, every edge is re-validated through an **independent scalar
//! software cascade** — a [`SoftwareChecker`] over a **separately built**
//! octree, sharing no memo, no replay state, and no datapath with the
//! accelerator that produced the plan. Soundness rests on fault
//! independence: for an unsafe plan to escape, the accelerator *and* the
//! certifier would have to corrupt the *same* edge verdict in the *same*
//! direction, and the certifier is plain CPU arithmetic outside the
//! injected-fault domain entirely.
//!
//! Certification is not free — it re-checks every pose of every edge at
//! software speed — so the service only pays for it per *returned* plan
//! (waypoints only, not the planner's full exploration), and the cost is
//! surfaced as a modeled overhead the integrity experiments report.

use mp_collision::{check_path, CollisionChecker, SoftwareChecker, DEFAULT_CSPACE_STEP};
use mp_geometry::AabbF;
use mp_octree::Octree;
use mp_robot::{JointConfig, RobotModel};

/// Modeled microseconds per *software* collision-detection pose query.
///
/// The paper's motivation (§1, Fig 2) is that the software cascade is
/// roughly an order of magnitude slower than the accelerated one; the
/// certifier runs on a host core, so each pose costs ~10× the CECDU's
/// [`CD_QUERY_MODELED_US`](crate::mpnet::CD_QUERY_MODELED_US).
pub const CERTIFY_QUERY_MODELED_US: f64 = 2.24;

/// Result of certifying one plan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CertifyOutcome {
    /// Whether every edge re-validated collision-free.
    pub clean: bool,
    /// First edge (waypoint window index) that failed, if any.
    pub first_bad_edge: Option<usize>,
    /// Edges in the certified path.
    pub edges: usize,
    /// Software pose queries spent re-validating.
    pub cd_queries: u64,
    /// Modeled host-CPU time (µs) for the certification pass.
    pub modeled_us: f64,
}

/// Re-validates returned plans through an independent software cascade.
///
/// The certifier owns its own [`SoftwareChecker`] over an octree built
/// fresh from the scene's obstacle list — deliberately *not* the checker
/// (or memo) the planner used, so accelerator-side corruption cannot
/// propagate into the reference verdicts.
#[derive(Clone, Debug)]
pub struct PlanCertifier {
    checker: SoftwareChecker,
    step: f32,
}

impl PlanCertifier {
    /// Builds a certifier for `robot` in a scene described by its
    /// obstacle boxes, constructing an independent octree at `depth`.
    pub fn new(robot: RobotModel, obstacles: &[AabbF], depth: u32) -> PlanCertifier {
        PlanCertifier {
            checker: SoftwareChecker::new(robot, Octree::build(obstacles, depth)),
            step: DEFAULT_CSPACE_STEP,
        }
    }

    /// Overrides the C-space discretization step used for edge checks.
    pub fn with_step(mut self, step: f32) -> PlanCertifier {
        self.step = step;
        self
    }

    /// Certifies a returned plan: re-checks every consecutive edge with
    /// the independent software cascade. A path with fewer than two
    /// waypoints has no edges and certifies vacuously clean.
    pub fn certify(&mut self, waypoints: &[JointConfig]) -> CertifyOutcome {
        let span = mp_telemetry::span("planner", "certify");
        let before = self.checker.stats().pose_queries;
        let first_bad_edge = if waypoints.len() < 2 {
            None
        } else {
            check_path(&mut self.checker, waypoints, self.step)
        };
        let cd_queries = self.checker.stats().pose_queries - before;
        let outcome = CertifyOutcome {
            clean: first_bad_edge.is_none(),
            first_bad_edge,
            edges: waypoints.len().saturating_sub(1),
            cd_queries,
            modeled_us: cd_queries as f64 * CERTIFY_QUERY_MODELED_US,
        };
        span.end_with(|| {
            mp_telemetry::arg2(
                "clean",
                mp_telemetry::ArgValue::U64(outcome.clean as u64),
                "cd_queries",
                mp_telemetry::ArgValue::U64(outcome.cd_queries),
            )
        });
        outcome
    }

    /// Total software pose queries spent across all certifications.
    pub fn total_queries(&self) -> u64 {
        self.checker.stats().pose_queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_collision::SoftwareChecker;
    use mp_octree::{Scene, SceneConfig};

    use crate::sampler::OracleSampler;
    use crate::tiers::{plan_at_tier_with_path, QualityTier};

    fn robot() -> RobotModel {
        RobotModel::jaco2()
    }

    fn solved_path(scene: &Scene, tier: QualityTier, seed: u64) -> Option<Vec<JointConfig>> {
        let r = robot();
        let tree = Octree::build(scene.obstacles(), tier.octree_depth());
        let mut checker = SoftwareChecker::new(r.clone(), tree);
        let mut sampler = OracleSampler::new(r.clone(), seed);
        let mut goal = r.home();
        goal.as_mut_slice()[0] += 1.1;
        let (out, path) =
            plan_at_tier_with_path(&mut checker, &mut sampler, &r.home(), &goal, tier, seed);
        if out.solved {
            path
        } else {
            None
        }
    }

    #[test]
    fn clean_plans_certify_clean() {
        let scene = Scene::random(SceneConfig::paper(), 5);
        let path = solved_path(&scene, QualityTier::Full, 7).expect("fixture must solve");
        let mut cert = PlanCertifier::new(robot(), scene.obstacles(), 4);
        let out = cert.certify(&path);
        assert!(
            out.clean,
            "honest plan failed at edge {:?}",
            out.first_bad_edge
        );
        assert_eq!(out.edges, path.len() - 1);
        assert!(out.cd_queries > 0);
        assert!(out.modeled_us > 0.0);
    }

    #[test]
    fn corrupted_waypoint_fails_certification() {
        let scene = Scene::random(SceneConfig::paper(), 5);
        let mut path = solved_path(&scene, QualityTier::Full, 7).expect("fixture must solve");
        // Model an escaped false "free" verdict: yank a middle waypoint
        // far out of the planned corridor, through whatever the scene has
        // in the way.
        let mid = path.len() / 2;
        path[mid].as_mut_slice()[1] += 2.4;
        let mut honest = SoftwareChecker::new(robot(), Octree::build(scene.obstacles(), 4));
        let broken = check_path(&mut honest, &path, DEFAULT_CSPACE_STEP).is_some();
        if !broken {
            // The perturbed corridor happens to be free in this scene;
            // the fixture can't exercise a rejection.
            return;
        }
        let mut cert = PlanCertifier::new(robot(), scene.obstacles(), 4);
        let out = cert.certify(&path);
        assert!(!out.clean, "corrupted plan must not certify");
        assert!(out.first_bad_edge.is_some());
    }

    #[test]
    fn trivial_paths_certify_vacuously() {
        let scene = Scene::random(SceneConfig::paper(), 2);
        let mut cert = PlanCertifier::new(robot(), scene.obstacles(), 4);
        let out = cert.certify(&[robot().home()]);
        assert!(out.clean);
        assert_eq!(out.edges, 0);
        assert_eq!(out.cd_queries, 0);
    }

    #[test]
    fn certifier_is_deterministic() {
        let scene = Scene::random(SceneConfig::paper(), 9);
        let path = solved_path(&scene, QualityTier::Fallback, 3).expect("fixture must solve");
        let run = || {
            let mut cert = PlanCertifier::new(robot(), scene.obstacles(), 4);
            cert.certify(&path)
        };
        assert_eq!(run(), run());
    }
}
