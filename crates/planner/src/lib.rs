//! Sampling-based motion planners for the MPAccel reproduction.
//!
//! The paper evaluates MPAccel by executing MPNet \[43\], a state-of-the-art
//! learning-based planner, on the accelerator. This crate provides:
//!
//! * [`nn`] — a from-scratch MLP (inference + SGD training) substituting
//!   for the PyTorch networks of the original artifact,
//! * [`sampler`] — the neural samplers proposing intermediate poses: a
//!   goal-directed stochastic *oracle* and a trainable [`sampler::MlpSampler`]
//!   distillable from it,
//! * [`mpnet`] — the MPNet-style planner (neural planning → feasibility
//!   checking → replanning → greedy shortcutting) that records a
//!   [`mpaccel_core::trace::PlannerTrace`] replayable on the hardware
//!   models,
//! * [`rrt`](mod@rrt) — classical RRT / RRT-Connect baselines,
//! * [`queries`] — benchmark query generation (§6: 100 start/goal pairs
//!   per scene),
//! * [`tiers`] — the graceful-degradation ladder (full MPNet → reduced
//!   MPNet → budgeted RRT-Connect → coarse-octree RRT) the planning
//!   service steps overloaded requests down,
//! * [`batch`] — the cross-query batched planning engine: lockstep tree
//!   growth over one shared validation stream per scene, bit-identical to
//!   the sequential planners lane-for-lane.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod certify;
pub mod mpnet;
pub mod nn;
pub mod queries;
pub mod rrt;
pub mod sampler;
pub mod tiers;

pub use batch::{
    mpnet_stream, plan_at_tier_batch, rrt_batch, rrt_connect_batch, BatchLaneOutcome,
    BatchPlanOutcome, BatchQuery,
};
pub use certify::{CertifyOutcome, PlanCertifier, CERTIFY_QUERY_MODELED_US};
pub use mpnet::{
    plan, plan_with_fallback, BudgetResource, FallbackPlanOutcome, MpnetConfig, PlanBudget,
    PlanFailure, PlanOutcome, PlanStats,
};
pub use rrt::{rrt, rrt_connect, RrtConfig, RrtOutcome};
pub use sampler::{encode_scene, MlpSampler, NeuralSampler, OracleSampler};
pub use tiers::{plan_at_tier, plan_at_tier_with_path, QualityTier, TierOutcome};
