//! Informed samplers: the neural-network stand-ins that propose the next
//! intermediate pose (MPNet's Pnet role).
//!
//! See DESIGN.md substitution 1: the trained MPNet checkpoints are replaced
//! by (a) an *oracle* goal-directed stochastic sampler and (b) a real MLP
//! ([`MlpSampler`]) that can be distilled from the oracle with the
//! from-scratch trainer in [`crate::nn`]. Both implement [`NeuralSampler`],
//! and both report an inference MAC count so the DNN-accelerator latency
//! model sees an MPNet-sized network.

use mp_octree::Scene;
use mp_robot::{JointConfig, RobotModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::nn::{Activation, Mlp, MlpScratch};

/// Maximum obstacles the scene encoder supports (the §6 benchmarks use
/// 5–9).
pub const MAX_OBSTACLES: usize = 9;

/// Length of the flat scene encoding: center + half-extents per obstacle.
pub const SCENE_ENCODING_LEN: usize = MAX_OBSTACLES * 6;

/// MAC count of MPNet's planning network (Pnet ≈ 3 M parameters); used as
/// the reported inference cost of the oracle sampler so the system model
/// prices NN inference like the paper's.
pub const MPNET_PNET_MACS: u64 = 3_000_000;

/// Encodes a scene into the fixed-length obstacle vector (MPNet's Enet
/// role, here a direct parametric encoding instead of a point-cloud
/// autoencoder).
///
/// # Panics
///
/// Panics if the scene has more than [`MAX_OBSTACLES`] obstacles.
pub fn encode_scene(scene: &Scene) -> Vec<f32> {
    assert!(
        scene.obstacles().len() <= MAX_OBSTACLES,
        "scene has {} obstacles; encoder supports {MAX_OBSTACLES}",
        scene.obstacles().len()
    );
    let mut out = vec![0.0; SCENE_ENCODING_LEN];
    for (i, o) in scene.obstacles().iter().enumerate() {
        let base = i * 6;
        out[base] = o.center.x;
        out[base + 1] = o.center.y;
        out[base + 2] = o.center.z;
        out[base + 3] = o.half.x;
        out[base + 4] = o.half.y;
        out[base + 5] = o.half.z;
    }
    out
}

/// A sampler proposing the next intermediate pose toward a goal.
pub trait NeuralSampler {
    /// Proposes the next pose from `current` toward `goal`.
    fn next_pose(&mut self, current: &JointConfig, goal: &JointConfig) -> JointConfig;

    /// MACs per inference (drives the DNN accelerator latency model).
    fn macs(&self) -> u64;
}

/// The oracle sampler: goal-directed steps with stochastic exploration
/// noise, mimicking a trained Pnet with inference-time dropout.
#[derive(Clone, Debug)]
pub struct OracleSampler {
    robot: RobotModel,
    step: f32,
    noise: f32,
    rng: StdRng,
}

impl OracleSampler {
    /// Creates an oracle sampler with paper-scale defaults.
    pub fn new(robot: RobotModel, seed: u64) -> OracleSampler {
        OracleSampler {
            robot,
            step: 0.8,
            noise: 0.25,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Sets the C-space step length (L2 radians).
    pub fn with_step(mut self, step: f32) -> OracleSampler {
        self.step = step.max(1e-3);
        self
    }

    /// Sets the exploration noise amplitude (radians per joint).
    pub fn with_noise(mut self, noise: f32) -> OracleSampler {
        self.noise = noise.max(0.0);
        self
    }

    /// Approximately normal noise (sum of three uniforms).
    fn noise_sample(&mut self) -> f32 {
        let u: f32 = (0..3).map(|_| self.rng.gen_range(-1.0f32..1.0)).sum();
        u / 3.0 * self.noise
    }
}

impl NeuralSampler for OracleSampler {
    fn next_pose(&mut self, current: &JointConfig, goal: &JointConfig) -> JointConfig {
        let dist = current.distance(goal);
        if dist <= self.step {
            return goal.clone();
        }
        let scale = self.step / dist;
        let values: Vec<f32> = current
            .as_slice()
            .iter()
            .zip(goal.as_slice())
            .map(|(&c, &g)| c + (g - c) * scale + self.noise_sample())
            .collect();
        self.robot.clamp_config(&JointConfig::new(values))
    }

    fn macs(&self) -> u64 {
        MPNET_PNET_MACS
    }
}

/// A real MLP sampler: `[scene encoding, current, goal] → Δpose`.
#[derive(Clone, Debug)]
pub struct MlpSampler {
    robot: RobotModel,
    mlp: Mlp,
    scene_encoding: Vec<f32>,
    // Reused across `next_pose` calls so inference is allocation-free.
    scratch: MlpScratch,
    input_buf: Vec<f32>,
}

impl MlpSampler {
    /// Creates an untrained MLP sampler for a robot and scene.
    pub fn new(robot: RobotModel, scene: &Scene, hidden: &[usize], seed: u64) -> MlpSampler {
        let dof = robot.dof();
        let mut sizes = vec![SCENE_ENCODING_LEN + 2 * dof];
        sizes.extend_from_slice(hidden);
        sizes.push(dof);
        MlpSampler {
            robot,
            mlp: Mlp::new(&sizes, Activation::Tanh, seed),
            scene_encoding: encode_scene(scene),
            scratch: MlpScratch::default(),
            input_buf: Vec::new(),
        }
    }

    /// Access to the underlying network (e.g. for training).
    pub fn mlp_mut(&mut self) -> &mut Mlp {
        &mut self.mlp
    }

    /// Builds the network input for a query.
    fn input(&self, current: &JointConfig, goal: &JointConfig) -> Vec<f32> {
        let mut x = self.scene_encoding.clone();
        x.extend_from_slice(current.as_slice());
        x.extend_from_slice(goal.as_slice());
        x
    }

    /// Distills the oracle's behaviour into the MLP: samples random
    /// (current, goal) pairs, queries a noise-free oracle for the step
    /// direction, and trains with SGD. Returns the final training loss.
    pub fn distill_from_oracle(
        &mut self,
        samples: usize,
        epochs: usize,
        lr: f32,
        seed: u64,
    ) -> f32 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut teacher = OracleSampler::new(self.robot.clone(), seed ^ 0xABCD).with_noise(0.0);
        let data: Vec<(Vec<f32>, Vec<f32>)> = (0..samples)
            .map(|_| {
                let current = self.robot.sample_config(&mut rng);
                let goal = self.robot.sample_config(&mut rng);
                let next = teacher.next_pose(&current, &goal);
                let delta: Vec<f32> = next
                    .as_slice()
                    .iter()
                    .zip(current.as_slice())
                    .map(|(n, c)| n - c)
                    .collect();
                (self.input(&current, &goal), delta)
            })
            .collect();
        let mut loss = f32::INFINITY;
        for _ in 0..epochs {
            loss = self.mlp.train_epoch(&data, lr);
        }
        loss
    }
}

impl NeuralSampler for MlpSampler {
    fn next_pose(&mut self, current: &JointConfig, goal: &JointConfig) -> JointConfig {
        if current.distance(goal) < 1e-4 {
            return goal.clone();
        }
        // Build the input in the reusable buffer and run inference through
        // the ping-pong scratch: the only allocation left per proposal is
        // the returned `JointConfig` itself.
        self.input_buf.clear();
        self.input_buf.extend_from_slice(&self.scene_encoding);
        self.input_buf.extend_from_slice(current.as_slice());
        self.input_buf.extend_from_slice(goal.as_slice());
        let delta = self.mlp.forward_scratch(&self.input_buf, &mut self.scratch);
        let values: Vec<f32> = current
            .as_slice()
            .iter()
            .zip(delta)
            .map(|(&c, &d)| c + d)
            .collect();
        self.robot.clamp_config(&JointConfig::new(values))
    }

    fn macs(&self) -> u64 {
        self.mlp.macs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_octree::SceneConfig;

    #[test]
    fn scene_encoding_layout() {
        let scene = Scene::random(SceneConfig::paper(), 2);
        let enc = encode_scene(&scene);
        assert_eq!(enc.len(), SCENE_ENCODING_LEN);
        let o0 = &scene.obstacles()[0];
        assert_eq!(enc[0], o0.center.x);
        assert_eq!(enc[3], o0.half.x);
        // Unused slots stay zero.
        let n = scene.obstacles().len();
        if n < MAX_OBSTACLES {
            assert!(enc[n * 6..].iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn oracle_moves_toward_goal() {
        let robot = RobotModel::baxter();
        let mut s = OracleSampler::new(robot.clone(), 1).with_noise(0.0);
        let start = robot.home();
        let mut goal = robot.home();
        goal.as_mut_slice()[0] += 1.5;
        goal.as_mut_slice()[2] += 1.5;
        let next = s.next_pose(&start, &goal);
        assert!(next.distance(&goal) < start.distance(&goal));
        // Within one step: jumps to the goal exactly.
        let near = s.next_pose(&goal, &goal);
        assert_eq!(near, goal);
    }

    #[test]
    fn oracle_respects_limits_despite_noise() {
        let robot = RobotModel::baxter();
        let mut s = OracleSampler::new(robot.clone(), 3).with_noise(2.0);
        let start = robot.home();
        let goal = {
            let mut g = robot.home();
            g.as_mut_slice()[1] = -2.0;
            robot.clamp_config(&g)
        };
        for _ in 0..50 {
            let p = s.next_pose(&start, &goal);
            for (v, l) in p.as_slice().iter().zip(robot.joint_limits()) {
                assert!(*v >= l.lo && *v <= l.hi);
            }
        }
    }

    #[test]
    fn oracle_reports_mpnet_macs() {
        let s = OracleSampler::new(RobotModel::jaco2(), 0);
        assert_eq!(s.macs(), MPNET_PNET_MACS);
    }

    #[test]
    fn mlp_sampler_shapes() {
        let robot = RobotModel::jaco2();
        let scene = Scene::random(SceneConfig::paper(), 0);
        let mut s = MlpSampler::new(robot.clone(), &scene, &[64, 64], 9);
        assert!(s.macs() > 0);
        let next = s.next_pose(&robot.home(), &robot.home());
        assert_eq!(next.dof(), 6);
    }

    #[test]
    fn distillation_learns_goal_direction() {
        let robot = RobotModel::jaco2();
        let scene = Scene::random(SceneConfig::paper(), 1);
        let mut s = MlpSampler::new(robot.clone(), &scene, &[48], 4);
        let loss = s.distill_from_oracle(150, 40, 0.01, 7);
        assert!(loss < 0.2, "distillation loss {loss}");
        // The trained sampler should step broadly toward the goal.
        let start = robot.home();
        let mut goal = robot.home();
        goal.as_mut_slice()[0] += 2.0;
        let next = s.next_pose(&start, &goal);
        assert!(
            next.distance(&goal) < start.distance(&goal),
            "trained sampler moved away from goal"
        );
    }
}
