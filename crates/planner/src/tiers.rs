//! Tiered planning-quality presets for graceful degradation under load.
//!
//! A realtime planning service facing overload has two bad options — miss
//! deadlines or drop requests — and one good one: serve a *cheaper* plan.
//! This module defines the degradation ladder the `mp-service` load
//! controller steps requests down:
//!
//! 1. [`QualityTier::Full`] — the paper-default MPNet configuration,
//! 2. [`QualityTier::Reduced`] — fewer MPNet expansion/replanning
//!    iterations, no shortcutting, tighter [`PlanBudget`],
//! 3. [`QualityTier::Fallback`] — skip the neural planner entirely and run
//!    budgeted RRT-Connect,
//! 4. [`QualityTier::Coarse`] — RRT-Connect against a *coarser* octree
//!    (depth [`QualityTier::octree_depth`] = 3 instead of the paper's 4),
//!    the cheapest plan the stack can produce.
//!
//! [`plan_at_tier`] is the cheap re-plan entry point: after a failed or
//! degraded attempt the service calls it again at a lower tier (with a
//! fresh attempt seed) without rebuilding any planner state.

use mp_collision::CollisionChecker;
use mp_robot::JointConfig;

use crate::mpnet::{plan, MpnetConfig, PlanBudget, CD_QUERY_MODELED_US};
use crate::rrt::{rrt_connect, RrtConfig};
use crate::sampler::NeuralSampler;

/// One rung of the degradation ladder, cheapest last.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QualityTier {
    /// Paper-default MPNet planning (shortcutting on).
    Full,
    /// Reduced MPNet: fewer expansions/replans, no shortcutting, tighter
    /// modeled-time budget.
    Reduced,
    /// Classical RRT-Connect under a hard CD-query budget (no neural
    /// inference cost at all).
    Fallback,
    /// RRT-Connect against a depth-3 octree with the tightest budget.
    Coarse,
}

impl QualityTier {
    /// Number of tiers.
    pub const COUNT: usize = 4;

    /// All tiers, best quality first.
    pub const LADDER: [QualityTier; QualityTier::COUNT] = [
        QualityTier::Full,
        QualityTier::Reduced,
        QualityTier::Fallback,
        QualityTier::Coarse,
    ];

    /// Stable index into [`QualityTier::LADDER`].
    pub fn index(self) -> usize {
        match self {
            QualityTier::Full => 0,
            QualityTier::Reduced => 1,
            QualityTier::Fallback => 2,
            QualityTier::Coarse => 3,
        }
    }

    /// The tier at ladder position `i` (clamped to the cheapest tier).
    pub fn from_index(i: usize) -> QualityTier {
        QualityTier::LADDER[i.min(QualityTier::COUNT - 1)]
    }

    /// Next-cheaper rung, if any.
    pub fn cheaper(self) -> Option<QualityTier> {
        match self {
            QualityTier::Full => Some(QualityTier::Reduced),
            QualityTier::Reduced => Some(QualityTier::Fallback),
            QualityTier::Fallback => Some(QualityTier::Coarse),
            QualityTier::Coarse => None,
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            QualityTier::Full => "full",
            QualityTier::Reduced => "reduced",
            QualityTier::Fallback => "fallback-rrt",
            QualityTier::Coarse => "coarse-rrt",
        }
    }

    /// Octree depth this tier plans against (the paper default is 4; the
    /// coarse tier trades resolution for traversal work at depth 3).
    pub fn octree_depth(self) -> u32 {
        match self {
            QualityTier::Coarse => 3,
            _ => 4,
        }
    }

    /// The tier's resource budget. Budgets shrink monotonically down the
    /// ladder so a degraded attempt is always cheaper than the one it
    /// replaces.
    pub fn budget(self) -> PlanBudget {
        match self {
            QualityTier::Full => PlanBudget::deadline_us(2_000.0),
            QualityTier::Reduced => PlanBudget::deadline_us(700.0),
            QualityTier::Fallback => PlanBudget {
                max_cd_queries: Some(1_500),
                max_nn_calls: None,
                max_modeled_us: Some(340.0),
            },
            QualityTier::Coarse => PlanBudget {
                max_cd_queries: Some(700),
                max_nn_calls: None,
                max_modeled_us: Some(160.0),
            },
        }
    }

    /// MPNet configuration for the neural tiers (`None` for the RRT-only
    /// rungs).
    pub fn mpnet_config(self, seed: u64) -> Option<MpnetConfig> {
        match self {
            QualityTier::Full => Some(MpnetConfig {
                seed,
                budget: self.budget(),
                ..MpnetConfig::default()
            }),
            QualityTier::Reduced => Some(MpnetConfig {
                max_expansion_steps: 20,
                replan_attempts: 8,
                shortcut: false,
                max_waypoints: 48,
                seed,
                budget: self.budget(),
                ..MpnetConfig::default()
            }),
            _ => None,
        }
    }

    /// RRT-Connect configuration for the classical tiers.
    pub fn rrt_config(self) -> RrtConfig {
        match self {
            QualityTier::Coarse => RrtConfig {
                max_nodes: 600,
                steer_step: 0.8,
                max_cd_queries: self.budget().max_cd_queries,
                ..RrtConfig::default()
            },
            _ => RrtConfig {
                max_nodes: 1_200,
                max_cd_queries: QualityTier::Fallback.budget().max_cd_queries,
                ..RrtConfig::default()
            },
        }
    }
}

/// Outcome of one tiered planning attempt.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TierOutcome {
    /// The tier that served the attempt.
    pub tier: QualityTier,
    /// Whether a collision-free path was produced.
    pub solved: bool,
    /// Collision-detection pose queries spent.
    pub cd_queries: u64,
    /// Neural-sampler inferences spent (zero on the RRT tiers).
    pub nn_calls: u64,
    /// Modeled accelerator time for the attempt (µs).
    pub modeled_us: f64,
    /// Dynamic collision-detection datapath energy the attempt spent, in
    /// picojoules: the checker's counter delta priced by `mp_sim::energy`.
    /// NN inference energy is billed separately (as `mlp_macs`) when the
    /// recorded trace is replayed on the hardware models.
    pub energy_pj: f64,
}

/// Runs one planning attempt at `tier`. This is the service's cheap
/// re-plan entry point: stateless between calls, so stepping a request
/// down the ladder is a plain re-invocation with the next tier and a new
/// attempt seed.
///
/// The caller owns checker construction and must build it at
/// [`QualityTier::octree_depth`] for the tier (the coarse tier's saving
/// comes from the shallower octree).
pub fn plan_at_tier(
    checker: &mut impl CollisionChecker,
    sampler: &mut impl NeuralSampler,
    start: &JointConfig,
    goal: &JointConfig,
    tier: QualityTier,
    seed: u64,
) -> TierOutcome {
    plan_at_tier_with_path(checker, sampler, start, goal, tier, seed).0
}

/// Like [`plan_at_tier`], but also returns the solved path's waypoints so
/// the caller can certify them through an independent checker (see
/// [`crate::certify::PlanCertifier`]). `None` when the attempt failed.
pub fn plan_at_tier_with_path(
    checker: &mut impl CollisionChecker,
    sampler: &mut impl NeuralSampler,
    start: &JointConfig,
    goal: &JointConfig,
    tier: QualityTier,
    seed: u64,
) -> (TierOutcome, Option<Vec<JointConfig>>) {
    let span = mp_telemetry::span_args(
        "planner",
        "plan",
        mp_telemetry::arg1("tier", mp_telemetry::ArgValue::Str(tier.label())),
    );
    // The attempt's energy is the checker's counter delta priced by the
    // energy model — the same attribution the batched entry point derives
    // per lane, so sequential and batched outcomes stay bit-identical.
    let ((mut outcome, path), cd_work) =
        mp_collision::attributed(checker, |c| match tier.mpnet_config(seed) {
            Some(cfg) => {
                let out = plan(c, sampler, start, goal, &cfg);
                (
                    TierOutcome {
                        tier,
                        solved: out.solved(),
                        cd_queries: out.stats.cd_queries,
                        nn_calls: out.stats.nn_calls,
                        modeled_us: PlanBudget::modeled_us(
                            out.stats.cd_queries,
                            out.stats.nn_calls,
                        ),
                        energy_pj: 0.0,
                    },
                    out.path,
                )
            }
            None => {
                let out = rrt_connect(c, start, goal, &tier.rrt_config(), seed);
                (
                    TierOutcome {
                        tier,
                        solved: out.solved(),
                        cd_queries: out.cd_queries,
                        nn_calls: 0,
                        modeled_us: out.cd_queries as f64 * CD_QUERY_MODELED_US,
                        energy_pj: 0.0,
                    },
                    out.path,
                )
            }
        });
    outcome.energy_pj = cd_work.energy_pj();
    span.end_with(|| {
        mp_telemetry::arg2(
            "solved",
            mp_telemetry::ArgValue::U64(outcome.solved as u64),
            "cd_queries",
            mp_telemetry::ArgValue::U64(outcome.cd_queries),
        )
    });
    (outcome, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_collision::SoftwareChecker;
    use mp_octree::{Octree, Scene, SceneConfig};
    use mp_robot::RobotModel;

    use crate::sampler::OracleSampler;

    #[test]
    fn ladder_is_ordered_and_budgets_shrink() {
        let mut prev = f64::INFINITY;
        for (i, t) in QualityTier::LADDER.iter().enumerate() {
            assert_eq!(t.index(), i);
            assert_eq!(QualityTier::from_index(i), *t);
            let cap = t.budget().max_modeled_us.expect("every tier is budgeted");
            assert!(cap < prev, "{} budget must shrink", t.label());
            prev = cap;
        }
        assert_eq!(QualityTier::from_index(99), QualityTier::Coarse);
        assert_eq!(QualityTier::Full.cheaper(), Some(QualityTier::Reduced));
        assert_eq!(QualityTier::Coarse.cheaper(), None);
        assert_eq!(QualityTier::Coarse.octree_depth(), 3);
        assert_eq!(QualityTier::Full.octree_depth(), 4);
    }

    #[test]
    fn every_tier_plans_free_space() {
        let robot = RobotModel::jaco2();
        let mut goal = robot.home();
        goal.as_mut_slice()[0] += 1.0;
        for tier in QualityTier::LADDER {
            let mut checker =
                SoftwareChecker::new(robot.clone(), Octree::build(&[], tier.octree_depth()));
            let mut sampler = OracleSampler::new(robot.clone(), 5);
            let out = plan_at_tier(&mut checker, &mut sampler, &robot.home(), &goal, tier, 9);
            assert!(out.solved, "{} failed in free space", tier.label());
            assert_eq!(out.tier, tier);
            assert!(out.modeled_us > 0.0);
            if tier.mpnet_config(0).is_none() {
                assert_eq!(out.nn_calls, 0, "RRT tiers use no neural inference");
            }
        }
    }

    #[test]
    fn degraded_tiers_respect_their_budgets() {
        let robot = RobotModel::jaco2();
        let scene = Scene::random(SceneConfig::paper(), 1);
        for tier in [QualityTier::Fallback, QualityTier::Coarse] {
            let tree = Octree::build(scene.obstacles(), tier.octree_depth());
            let mut checker = SoftwareChecker::new(robot.clone(), tree);
            let mut sampler = OracleSampler::new(robot.clone(), 2);
            let mut goal = robot.home();
            goal.as_mut_slice()[1] += 0.9;
            let out = plan_at_tier(&mut checker, &mut sampler, &robot.home(), &goal, tier, 4);
            let cap = tier.budget().max_cd_queries.unwrap();
            // The RRT budget is checked between edges; allow one edge of
            // slack (see rrt.rs).
            assert!(
                out.cd_queries < cap + 120,
                "{} spent {} queries (cap {cap})",
                tier.label(),
                out.cd_queries
            );
        }
    }

    #[test]
    fn deterministic_in_the_seed() {
        let robot = RobotModel::jaco2();
        let scene = Scene::random(SceneConfig::paper(), 3);
        let mut goal = robot.home();
        goal.as_mut_slice()[0] += 1.2;
        for tier in QualityTier::LADDER {
            let run = |seed| {
                let tree = Octree::build(scene.obstacles(), tier.octree_depth());
                let mut checker = SoftwareChecker::new(robot.clone(), tree);
                let mut sampler = OracleSampler::new(robot.clone(), 8);
                plan_at_tier(&mut checker, &mut sampler, &robot.home(), &goal, tier, seed)
            };
            assert_eq!(run(21), run(21), "{} not deterministic", tier.label());
        }
    }
}
