//! End-to-end planning with the *trained* MLP sampler (not the oracle):
//! distill the MLP from the oracle, then plan with it, demonstrating the
//! full learning-based path of DESIGN.md substitution 1.

use mp_collision::{check_path, SoftwareChecker};
use mp_octree::{Octree, Scene, SceneConfig};
use mp_planner::mpnet::{plan, MpnetConfig};
use mp_planner::sampler::{MlpSampler, NeuralSampler, OracleSampler};
use mp_robot::{JointConfig, RobotModel};

fn trained_sampler(robot: &RobotModel, scene: &Scene) -> MlpSampler {
    let mut s = MlpSampler::new(robot.clone(), scene, &[64], 21);
    let loss = s.distill_from_oracle(250, 60, 0.01, 5);
    assert!(loss < 0.25, "distillation did not converge: loss {loss}");
    s
}

#[test]
fn distilled_mlp_plans_in_free_space() {
    let robot = RobotModel::jaco2();
    let scene = Scene::random(SceneConfig::paper(), 0);
    let mut checker = SoftwareChecker::new(robot.clone(), Octree::build(&[], 3));
    let mut sampler = trained_sampler(&robot, &scene);
    let mut goal = robot.home();
    goal.as_mut_slice()[0] += 1.4;
    goal.as_mut_slice()[2] -= 0.8;
    let goal = robot.clamp_config(&goal);
    let out = plan(
        &mut checker,
        &mut sampler,
        &robot.home(),
        &goal,
        &MpnetConfig::default(),
    );
    assert!(out.solved(), "MLP-driven planner failed in free space");
    let path = out.path.unwrap();
    assert_eq!(path.first().unwrap(), &robot.home());
    assert_eq!(path.last().unwrap(), &goal);
    // In free space the direct connection may succeed before any sampler
    // call; the sampler still advertises its real MAC count for the DNN
    // latency model.
    assert!(out.trace.cd_batches() >= 1);
    assert!(sampler.macs() > 1000);
}

#[test]
fn distilled_mlp_plans_around_obstacles_with_replanning() {
    let robot = RobotModel::jaco2();
    let scene = Scene::random(SceneConfig::paper(), 2);
    let tree = scene.octree();
    let query = mp_planner::queries::generate_queries(&robot, &scene, 1, 8)
        .expect("query generation")[0]
        .clone();
    let mut sampler = trained_sampler(&robot, &scene);
    // The MLP is deterministic, so exploration comes entirely from the
    // replanning noise; give it more attempts.
    let mut solved = false;
    for seed in 0..6 {
        let mut checker = SoftwareChecker::new(robot.clone(), tree.clone());
        let cfg = MpnetConfig {
            replan_attempts: 40,
            seed,
            ..MpnetConfig::default()
        };
        let out = plan(&mut checker, &mut sampler, &query.start, &query.goal, &cfg);
        if let Some(path) = &out.path {
            let mut verifier = SoftwareChecker::new(robot.clone(), tree.clone());
            assert_eq!(check_path(&mut verifier, path, 0.04), None);
            solved = true;
            break;
        }
    }
    assert!(solved, "MLP planner failed on a solvable benchmark query");
}

#[test]
fn mlp_and_oracle_agree_on_step_direction_after_distillation() {
    let robot = RobotModel::baxter();
    let scene = Scene::random(SceneConfig::paper(), 1);
    let mut mlp = MlpSampler::new(robot.clone(), &scene, &[64], 3);
    mlp.distill_from_oracle(250, 60, 0.01, 9);
    let mut oracle = OracleSampler::new(robot.clone(), 1).with_noise(0.0);
    let mut agreements = 0;
    let total = 30;
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..total {
        let a = robot.sample_config(&mut rng);
        let b = robot.sample_config(&mut rng);
        let m = mlp.next_pose(&a, &b);
        let o = oracle.next_pose(&a, &b);
        // Directions agree if both reduce the distance to the goal.
        if m.distance(&b) < a.distance(&b) && o.distance(&b) < a.distance(&b) {
            agreements += 1;
        }
    }
    assert!(
        agreements * 10 >= total * 8,
        "only {agreements}/{total} goal-directed steps"
    );
}

#[test]
fn training_improves_goal_directedness() {
    // Sanity check that the distillation test is meaningful: training must
    // raise the rate at which a step reduces the distance to the goal.
    let robot = RobotModel::jaco2();
    let scene = Scene::random(SceneConfig::paper(), 4);
    let goal_directed_rate = |sampler: &mut MlpSampler| {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(6);
        let total = 60;
        let mut hits = 0;
        for _ in 0..total {
            let a = robot.sample_config(&mut rng);
            let b = robot.sample_config(&mut rng);
            if sampler.next_pose(&a, &b).distance(&b) < a.distance(&b) {
                hits += 1;
            }
        }
        hits as f32 / total as f32
    };
    let mut raw = MlpSampler::new(robot.clone(), &scene, &[64], 77);
    let before = goal_directed_rate(&mut raw);
    let mut trained = MlpSampler::new(robot.clone(), &scene, &[64], 77);
    trained.distill_from_oracle(250, 60, 0.01, 3);
    let after = goal_directed_rate(&mut trained);
    assert!(
        after > before.max(0.75),
        "training should improve goal-directedness ({before} -> {after})"
    );
    let _ = JointConfig::zeros(1);
}
