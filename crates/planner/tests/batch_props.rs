//! Differential bit-identity properties of the cross-query batch engine:
//! for any scene, query set and seeds, every batched lane must reproduce
//! the sequential planner *exactly* — same plan (every waypoint
//! bit-equal), same node counts, and the same `CdStats` down to the
//! multiplication counters. Checked over both collision chains:
//!
//! * the f32 software chain ([`SoftwareChecker`]), and
//! * the Q3.12 fixed-point CECDU chain ([`CecduChecker`] over
//!   [`CecduSim`]), whose quantized cascade takes different branches than
//!   the float path and would expose any lane cross-talk immediately.
//!
//! The batch engine interleaves lanes over one shared checker, so these
//! properties pin exactly the contract the engine claims: interleaving
//! changes *when* checks run, never *what* they compute.

use mp_collision::{CdStats, CollisionChecker, SoftwareChecker};
use mp_octree::{Scene, SceneConfig};
use mp_planner::batch::{rrt_batch, rrt_connect_batch, BatchQuery};
use mp_planner::rrt::{rrt, rrt_connect, RrtConfig, RrtOutcome};
use mp_robot::RobotModel;
use mp_sim::{CecduConfig, IuKind};
use mpaccel_core::{CecduChecker, CecduSim};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Tight budget so adversarial (unsolvable) queries terminate quickly.
fn cfg() -> RrtConfig {
    RrtConfig {
        max_cd_queries: Some(1500),
        ..RrtConfig::default()
    }
}

/// Random queries with endpoints sampled from the robot's C-space —
/// deliberately *not* filtered for validity, so lanes that fail endpoint
/// validation (an early-exit path in the engine) are exercised too.
fn make_queries(robot: &RobotModel, n: usize, seed: u64) -> Vec<BatchQuery> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| BatchQuery {
            start: robot.sample_config(&mut rng),
            goal: robot.sample_config(&mut rng),
            seed: seed ^ (0x9e37 + i as u64),
        })
        .collect()
}

fn assert_lane_identical(
    lane: usize,
    seq: &RrtOutcome,
    seq_stats: CdStats,
    batch: &RrtOutcome,
    batch_stats: CdStats,
) {
    assert_eq!(seq.path, batch.path, "lane {lane}: paths diverged");
    assert_eq!(seq.nodes, batch.nodes, "lane {lane}: node counts diverged");
    assert_eq!(
        seq.cd_queries, batch.cd_queries,
        "lane {lane}: CD query counts diverged"
    );
    assert_eq!(
        seq_stats, batch_stats,
        "lane {lane}: CdStats diverged (work attribution is off)"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// RRT-Connect over the f32 software chain: batched lanes ==
    /// sequential runs, stats and all.
    #[test]
    fn connect_batch_matches_sequential_f32(
        scene_seed in 0u64..6,
        query_seed in 0u64..1000,
        lanes in 1usize..5,
    ) {
        let robot = RobotModel::jaco2();
        let tree = Scene::random(SceneConfig::paper(), scene_seed).octree();
        let queries = make_queries(&robot, lanes, query_seed);
        let cfg = cfg();

        let seq: Vec<(RrtOutcome, CdStats)> = queries
            .iter()
            .map(|q| {
                let mut ck = SoftwareChecker::new(robot.clone(), tree.clone());
                let out = rrt_connect(&mut ck, &q.start, &q.goal, &cfg, q.seed);
                (out, ck.stats())
            })
            .collect();

        let mut shared = SoftwareChecker::new(robot.clone(), tree.clone());
        let batched = rrt_connect_batch(&mut shared, &queries, &cfg);

        prop_assert_eq!(seq.len(), batched.len());
        for (i, ((s, st), b)) in seq.iter().zip(&batched).enumerate() {
            assert_lane_identical(i, s, *st, &b.outcome, b.stats);
        }
        // The shared checker saw exactly the sum of all lanes' work.
        let mut total = CdStats::default();
        for b in &batched {
            total.absorb(b.stats);
        }
        prop_assert_eq!(total, shared.stats());
    }

    /// RRT-Connect over the Q3.12 CECDU chain: the fixed-point cascade
    /// branches differently from f32, so any shared-state leak between
    /// lanes shows up here even if the float test passes.
    #[test]
    fn connect_batch_matches_sequential_q312(
        scene_seed in 0u64..4,
        query_seed in 0u64..1000,
        lanes in 1usize..4,
    ) {
        let robot = RobotModel::jaco2();
        let octree = Scene::random(SceneConfig::paper(), scene_seed).octree();
        let queries = make_queries(&robot, lanes, query_seed);
        let cfg = cfg();
        let sim = CecduSim::new(
            robot.clone(),
            octree,
            CecduConfig::new(4, IuKind::MultiCycle),
        );

        let seq: Vec<(RrtOutcome, CdStats)> = queries
            .iter()
            .map(|q| {
                let mut ck = CecduChecker::new(sim.clone());
                let out = rrt_connect(&mut ck, &q.start, &q.goal, &cfg, q.seed);
                (out, ck.stats())
            })
            .collect();

        let mut shared = CecduChecker::new(sim);
        let batched = rrt_connect_batch(&mut shared, &queries, &cfg);

        prop_assert_eq!(seq.len(), batched.len());
        for (i, ((s, st), b)) in seq.iter().zip(&batched).enumerate() {
            assert_lane_identical(i, s, *st, &b.outcome, b.stats);
        }
    }

    /// Plain goal-biased RRT over the f32 chain (the other lockstep
    /// grower shares none of RRT-Connect's lane code paths).
    #[test]
    fn rrt_batch_matches_sequential_f32(
        scene_seed in 0u64..4,
        query_seed in 0u64..1000,
        lanes in 1usize..4,
    ) {
        let robot = RobotModel::jaco2();
        let tree = Scene::random(SceneConfig::paper(), scene_seed).octree();
        let queries = make_queries(&robot, lanes, query_seed);
        let cfg = cfg();

        let seq: Vec<(RrtOutcome, CdStats)> = queries
            .iter()
            .map(|q| {
                let mut ck = SoftwareChecker::new(robot.clone(), tree.clone());
                let out = rrt(&mut ck, &q.start, &q.goal, &cfg, q.seed);
                (out, ck.stats())
            })
            .collect();

        let mut shared = SoftwareChecker::new(robot.clone(), tree.clone());
        let batched = rrt_batch(&mut shared, &queries, &cfg);

        prop_assert_eq!(seq.len(), batched.len());
        for (i, ((s, st), b)) in seq.iter().zip(&batched).enumerate() {
            assert_lane_identical(i, s, *st, &b.outcome, b.stats);
        }
    }
}

/// Deterministic smoke check (not a property): an empty batch is legal
/// and returns no lanes, on both chains.
#[test]
fn empty_batch_is_identity() {
    let robot = RobotModel::jaco2();
    let tree = Scene::random(SceneConfig::paper(), 0).octree();
    let mut ck = SoftwareChecker::new(robot, tree);
    let out = rrt_connect_batch(&mut ck, &[], &cfg());
    assert!(out.is_empty());
    assert_eq!(ck.stats(), CdStats::default());
}
