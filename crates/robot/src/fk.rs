//! Forward kinematics: from a joint configuration to the robot's occupied
//! space as a set of oriented bounding boxes.
//!
//! This is the software model of the OBB Generation Unit (§5.2, Fig 14a):
//! the link transforms come from the DH chain (trigonometric unit + matrix
//! multipliers), and each link's precomputed box is carried to its world
//! pose, yielding one OBB per link plus the two sphere radii.

use mp_geometry::{FxObb, Obb, Transform};

use crate::cspace::JointConfig;
use crate::dh::{chain_transforms_into, TrigMode};
use crate::model::RobotModel;

/// Cumulative joint-frame transforms for a configuration. Index 0 is the
/// base (identity); index `i ≥ 1` is the frame after joint `i`.
///
/// # Panics
///
/// Panics if `cfg.dof() != model.dof()`.
pub fn joint_frames(model: &RobotModel, cfg: &JointConfig, mode: TrigMode) -> Vec<Transform> {
    let mut frames = Vec::with_capacity(model.dof() + 1);
    joint_frames_into(model, cfg, mode, &mut frames);
    frames
}

/// [`joint_frames`] into a reusable buffer (cleared first) — checkers call
/// FK once per pose query, so reusing the frame buffer keeps the pose hot
/// path allocation-free.
///
/// # Panics
///
/// Panics if `cfg.dof() != model.dof()`.
pub fn joint_frames_into(
    model: &RobotModel,
    cfg: &JointConfig,
    mode: TrigMode,
    frames: &mut Vec<Transform>,
) {
    assert_eq!(cfg.dof(), model.dof(), "configuration DOF mismatch");
    frames.clear();
    frames.push(Transform::identity());
    chain_transforms_into(model.dh_params(), cfg.as_slice(), mode, frames);
}

/// The robot's occupied space for a pose: one world-frame OBB per link.
///
/// # Panics
///
/// Panics if `cfg.dof() != model.dof()`.
///
/// # Examples
///
/// ```
/// use mp_robot::{fk::link_obbs, RobotModel, TrigMode};
///
/// let robot = RobotModel::jaco2();
/// let obbs = link_obbs(&robot, &robot.home(), TrigMode::Exact);
/// assert_eq!(obbs.len(), 7);
/// ```
pub fn link_obbs(model: &RobotModel, cfg: &JointConfig, mode: TrigMode) -> Vec<Obb<f32>> {
    let mut frames = Vec::with_capacity(model.dof() + 1);
    let mut out = Vec::with_capacity(model.links().len());
    link_obbs_into(model, cfg, mode, &mut frames, &mut out);
    out
}

/// [`link_obbs`] into reusable buffers (both cleared first): `frames` is
/// the FK scratch, `out` receives one OBB per link.
///
/// # Panics
///
/// Panics if `cfg.dof() != model.dof()`.
pub fn link_obbs_into(
    model: &RobotModel,
    cfg: &JointConfig,
    mode: TrigMode,
    frames: &mut Vec<Transform>,
    out: &mut Vec<Obb<f32>>,
) {
    joint_frames_into(model, cfg, mode, frames);
    out.clear();
    out.extend(
        model
            .links()
            .iter()
            .map(|link| Obb::from_transform(&frames[link.frame], link.local_center, link.half)),
    );
}

/// The fixed-point link OBBs the hardware streams to the OOCDs (17 × 16-bit
/// values each, §5.2).
pub fn link_obbs_fx(model: &RobotModel, cfg: &JointConfig, mode: TrigMode) -> Vec<FxObb> {
    link_obbs(model, cfg, mode)
        .iter()
        .map(Obb::quantize)
        .collect()
}

/// The position of the end effector (origin of the last joint frame).
pub fn end_effector(model: &RobotModel, cfg: &JointConfig) -> mp_geometry::Vec3 {
    let frames = joint_frames(model, cfg, TrigMode::Exact);
    frames
        .last()
        .expect("a robot has at least the base frame")
        .translation
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_geometry::Vec3;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn frame_zero_is_identity() {
        let r = RobotModel::jaco2();
        let frames = joint_frames(&r, &r.home(), TrigMode::Exact);
        assert_eq!(frames.len(), 7);
        assert_eq!(frames[0], Transform::identity());
    }

    #[test]
    fn obb_count_matches_links() {
        for r in [RobotModel::jaco2(), RobotModel::baxter()] {
            let obbs = link_obbs(&r, &r.home(), TrigMode::Exact);
            assert_eq!(obbs.len(), 7);
        }
    }

    #[test]
    fn rotations_stay_orthonormal_over_random_poses() {
        let r = RobotModel::baxter();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let cfg = r.sample_config(&mut rng);
            for f in joint_frames(&r, &cfg, TrigMode::Exact) {
                assert!(f.rotation.orthonormality_error() < 1e-4);
            }
        }
    }

    #[test]
    fn robot_stays_within_reach_sphere() {
        // Every link OBB corner must lie within the arm's maximum reach.
        let r = RobotModel::jaco2();
        let mut rng = StdRng::seed_from_u64(11);
        let reach = 1.4; // normalized units; Jaco2 reach ≈ 0.9 m → 1.0 + link radii
        for _ in 0..100 {
            let cfg = r.sample_config(&mut rng);
            for obb in link_obbs(&r, &cfg, TrigMode::Exact) {
                for c in obb.corners() {
                    assert!(
                        c.length() < reach,
                        "corner {c:?} beyond reach for cfg {cfg:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn base_link_is_static() {
        let r = RobotModel::jaco2();
        let mut rng = StdRng::seed_from_u64(2);
        let a = link_obbs(&r, &r.sample_config(&mut rng), TrigMode::Exact);
        let b = link_obbs(&r, &r.sample_config(&mut rng), TrigMode::Exact);
        assert_eq!(a[0].center, b[0].center); // base column never moves
    }

    #[test]
    fn moving_one_joint_moves_downstream_links_only() {
        let r = RobotModel::baxter();
        let home = r.home();
        let mut moved = home.clone();
        moved.as_mut_slice()[5] += 0.4; // wrist joint
        let a = link_obbs(&r, &home, TrigMode::Exact);
        let b = link_obbs(&r, &moved, TrigMode::Exact);
        // Links on frames <= 5 unchanged.
        for (i, link) in r.links().iter().enumerate() {
            let delta = (a[i].center - b[i].center).length();
            if link.frame <= 5 {
                assert!(delta < 1e-6, "link {i} moved by {delta}");
            }
        }
        // The hand (frame 7) moves.
        let hand = r.link_count() - 1;
        assert!((a[hand].center - b[hand].center).length() > 1e-4);
    }

    #[test]
    fn hardware_trig_fk_close_to_exact() {
        let r = RobotModel::baxter();
        let mut rng = StdRng::seed_from_u64(77);
        let mut worst: f32 = 0.0;
        for _ in 0..50 {
            let cfg = r.sample_config(&mut rng);
            let exact = link_obbs(&r, &cfg, TrigMode::Exact);
            let hw = link_obbs(&r, &cfg, TrigMode::Hardware);
            for (e, h) in exact.iter().zip(&hw) {
                worst = worst.max((e.center - h.center).length());
            }
        }
        // Fifth-order trig error accumulates over 7 joints but stays tiny.
        assert!(worst < 5e-3, "worst FK deviation {worst}");
    }

    #[test]
    fn quantized_obbs_are_close_and_conservative() {
        let r = RobotModel::jaco2();
        let cfg = r.home();
        let exact = link_obbs(&r, &cfg, TrigMode::Exact);
        let fx = link_obbs_fx(&r, &cfg, TrigMode::Exact);
        for (e, q) in exact.iter().zip(&fx) {
            assert!((e.center - q.center.to_f32()).length() < 1e-3);
            assert!(q.bounding_radius.to_f32() >= e.bounding_radius);
            assert!(q.inscribed_radius.to_f32() <= e.inscribed_radius);
        }
    }

    #[test]
    fn end_effector_changes_with_configuration() {
        let r = RobotModel::jaco2();
        let mut rng = StdRng::seed_from_u64(5);
        let a = end_effector(&r, &r.sample_config(&mut rng));
        let b = end_effector(&r, &r.sample_config(&mut rng));
        assert!((a - b).length() > 1e-3);
        assert!(a.length() < 1.4);
    }

    #[test]
    fn planar_arm_end_effector_geometry() {
        // Both joints at 0: arm stretched along +x, EE at 2*0.4.
        let r = RobotModel::planar_2dof();
        let ee = end_effector(&r, &JointConfig::zeros(2));
        assert!((ee - Vec3::new(0.8, 0.0, 0.0)).length() < 1e-5);
        // Elbow at 90°: EE at (0.4, 0.4).
        let ee2 = end_effector(
            &r,
            &JointConfig::new(vec![0.0, core::f32::consts::FRAC_PI_2]),
        );
        assert!((ee2 - Vec3::new(0.4, 0.4, 0.0)).length() < 1e-5);
    }
}
