//! Configuration space: joint configurations and short motions.
//!
//! Motion planning happens in the robot's C-space (§2.1): a point is a full
//! joint configuration, a straight segment between two points is a "short
//! motion", and collision detection of a motion checks a sequence of
//! discrete poses along it (Fig 6a).

use core::ops::Index;

use rand::Rng;

/// A joint configuration (a point in C-space), one angle per DOF in radians.
///
/// # Examples
///
/// ```
/// use mp_robot::JointConfig;
///
/// let a = JointConfig::new(vec![0.0, 0.0]);
/// let b = JointConfig::new(vec![1.0, -1.0]);
/// let mid = a.lerp(&b, 0.5);
/// assert_eq!(mid.as_slice(), &[0.5, -0.5]);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JointConfig(Vec<f32>);

impl JointConfig {
    /// Creates a configuration from joint values.
    pub fn new(values: Vec<f32>) -> JointConfig {
        JointConfig(values)
    }

    /// The all-zero configuration for `dof` joints.
    pub fn zeros(dof: usize) -> JointConfig {
        JointConfig(vec![0.0; dof])
    }

    /// Number of degrees of freedom.
    pub fn dof(&self) -> usize {
        self.0.len()
    }

    /// The joint values.
    pub fn as_slice(&self) -> &[f32] {
        &self.0
    }

    /// Mutable access to the joint values.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.0
    }

    /// Linear interpolation in C-space (the paper's local planner, §2.1).
    ///
    /// # Panics
    ///
    /// Panics if the configurations have different DOF counts.
    pub fn lerp(&self, other: &JointConfig, t: f32) -> JointConfig {
        assert_eq!(self.dof(), other.dof(), "DOF mismatch in lerp");
        JointConfig(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(a, b)| a + (b - a) * t)
                .collect(),
        )
    }

    /// Euclidean (L2) distance in C-space.
    ///
    /// # Panics
    ///
    /// Panics if the configurations have different DOF counts.
    pub fn distance(&self, other: &JointConfig) -> f32 {
        assert_eq!(self.dof(), other.dof(), "DOF mismatch in distance");
        self.0
            .iter()
            .zip(&other.0)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt()
    }

    /// Chebyshev (L∞) distance — the largest single-joint excursion, which
    /// bounds how far any robot point can move and therefore drives motion
    /// discretization.
    ///
    /// # Panics
    ///
    /// Panics if the configurations have different DOF counts.
    pub fn linf_distance(&self, other: &JointConfig) -> f32 {
        assert_eq!(self.dof(), other.dof(), "DOF mismatch in linf_distance");
        self.0
            .iter()
            .zip(&other.0)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl Index<usize> for JointConfig {
    type Output = f32;
    fn index(&self, i: usize) -> &f32 {
        &self.0[i]
    }
}

impl From<Vec<f32>> for JointConfig {
    fn from(v: Vec<f32>) -> JointConfig {
        JointConfig::new(v)
    }
}

/// Joint limits for one revolute joint, radians.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JointLimit {
    /// Lower bound.
    pub lo: f32,
    /// Upper bound.
    pub hi: f32,
}

impl JointLimit {
    /// Creates a limit.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: f32, hi: f32) -> JointLimit {
        assert!(lo <= hi, "joint limit lo > hi ({lo} > {hi})");
        JointLimit { lo, hi }
    }

    /// A symmetric limit `[-r, r]`.
    pub fn symmetric(r: f32) -> JointLimit {
        JointLimit::new(-r.abs(), r.abs())
    }

    /// Clamps a joint value into the limit.
    pub fn clamp(&self, v: f32) -> f32 {
        v.clamp(self.lo, self.hi)
    }

    /// Samples uniformly within the limit.
    pub fn sample(&self, rng: &mut impl Rng) -> f32 {
        if self.lo == self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..self.hi)
        }
    }
}

/// A short motion: the straight C-space segment between two configurations.
#[derive(Clone, Debug, PartialEq)]
pub struct Motion {
    /// Start configuration.
    pub from: JointConfig,
    /// End configuration.
    pub to: JointConfig,
}

impl Motion {
    /// Creates a motion.
    ///
    /// # Panics
    ///
    /// Panics if the configurations have different DOF counts.
    pub fn new(from: JointConfig, to: JointConfig) -> Motion {
        assert_eq!(from.dof(), to.dof(), "DOF mismatch in Motion");
        Motion { from, to }
    }

    /// Number of discrete poses when sampled so that no joint moves more
    /// than `step` radians between consecutive poses. Always at least 2
    /// (both endpoints), matching the paper's discretized motion of Fig 6a.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not positive.
    pub fn pose_count(&self, step: f32) -> usize {
        assert!(step > 0.0, "discretization step must be positive");
        let spans = self.from.linf_distance(&self.to);
        ((spans / step).ceil() as usize + 1).max(2)
    }

    /// The `i`-th of `n` discrete poses (0 = start, n-1 = end).
    ///
    /// # Panics
    ///
    /// Panics if `i >= n` or `n < 2`.
    pub fn pose(&self, i: usize, n: usize) -> JointConfig {
        assert!(n >= 2, "a motion needs at least 2 poses");
        assert!(i < n, "pose index {i} out of range for {n} poses");
        if i == n - 1 {
            // Exact endpoint (float lerp at t=1 can be off by an ulp).
            return self.to.clone();
        }
        self.from.lerp(&self.to, i as f32 / (n - 1) as f32)
    }

    /// Writes the `i`-th of `n` discrete poses into `out` without
    /// allocating. The arithmetic is exactly [`Motion::pose`]'s, so the
    /// result is bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n` or `n < 2`.
    pub fn pose_into(&self, i: usize, n: usize, out: &mut JointConfig) {
        assert!(n >= 2, "a motion needs at least 2 poses");
        assert!(i < n, "pose index {i} out of range for {n} poses");
        out.0.clear();
        if i == n - 1 {
            // Exact endpoint (float lerp at t=1 can be off by an ulp).
            out.0.extend_from_slice(&self.to.0);
            return;
        }
        let t = i as f32 / (n - 1) as f32;
        out.0.extend(
            self.from
                .0
                .iter()
                .zip(&self.to.0)
                .map(|(a, b)| a + (b - a) * t),
        );
    }

    /// All discrete poses for the given joint step.
    pub fn discretize(&self, step: f32) -> Vec<JointConfig> {
        let n = self.pose_count(step);
        (0..n).map(|i| self.pose(i, n)).collect()
    }

    /// The hardware motion descriptor (§5.1): start pose, per-joint delta
    /// between consecutive poses, and pose count.
    pub fn descriptor(&self, step: f32) -> MotionDescriptor {
        let n = self.pose_count(step);
        let delta: Vec<f32> = self
            .from
            .as_slice()
            .iter()
            .zip(self.to.as_slice())
            .map(|(a, b)| (b - a) / (n - 1) as f32)
            .collect();
        MotionDescriptor {
            start: self.from.clone(),
            delta: JointConfig::new(delta),
            count: n,
        }
    }

    /// C-space length (L2).
    pub fn length(&self) -> f32 {
        self.from.distance(&self.to)
    }
}

/// The wire format SAS receives per motion (§5.1): "Motion data contains its
/// start pose, the distance between two discrete poses, and the number of
/// discrete poses."
#[derive(Clone, Debug, PartialEq)]
pub struct MotionDescriptor {
    /// First pose of the motion.
    pub start: JointConfig,
    /// Per-joint increment between consecutive poses.
    pub delta: JointConfig,
    /// Number of discrete poses (≥ 2).
    pub count: usize,
}

impl MotionDescriptor {
    /// Reconstructs pose `i` (what the CD Query Generator's adders do).
    ///
    /// # Panics
    ///
    /// Panics if `i >= count`.
    pub fn pose(&self, i: usize) -> JointConfig {
        assert!(i < self.count, "pose index {i} out of range");
        JointConfig::new(
            self.start
                .as_slice()
                .iter()
                .zip(self.delta.as_slice())
                .map(|(s, d)| s + d * i as f32)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lerp_endpoints() {
        let a = JointConfig::new(vec![0.0, 1.0, -1.0]);
        let b = JointConfig::new(vec![2.0, 1.0, 1.0]);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
    }

    #[test]
    fn distances() {
        let a = JointConfig::new(vec![0.0, 0.0]);
        let b = JointConfig::new(vec![3.0, 4.0]);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.linf_distance(&b), 4.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    #[should_panic(expected = "DOF mismatch")]
    fn dof_mismatch_panics() {
        let a = JointConfig::zeros(2);
        let b = JointConfig::zeros(3);
        let _ = a.distance(&b);
    }

    #[test]
    fn joint_limit_clamp_and_sample() {
        let l = JointLimit::new(-1.0, 2.0);
        assert_eq!(l.clamp(5.0), 2.0);
        assert_eq!(l.clamp(-5.0), -1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = l.sample(&mut rng);
            assert!((-1.0..2.0).contains(&v));
        }
        let point = JointLimit::new(0.5, 0.5);
        assert_eq!(point.sample(&mut rng), 0.5);
    }

    #[test]
    #[should_panic(expected = "lo > hi")]
    fn inverted_limit_panics() {
        let _ = JointLimit::new(1.0, -1.0);
    }

    #[test]
    fn pose_count_scales_with_distance() {
        let m = Motion::new(
            JointConfig::new(vec![0.0, 0.0]),
            JointConfig::new(vec![1.0, 0.5]),
        );
        assert_eq!(m.pose_count(0.1), 11);
        assert_eq!(m.pose_count(1.0), 2);
        // Zero-length motion still has both endpoints.
        let z = Motion::new(JointConfig::zeros(2), JointConfig::zeros(2));
        assert_eq!(z.pose_count(0.1), 2);
    }

    #[test]
    fn discretize_hits_endpoints_and_is_uniform() {
        let m = Motion::new(JointConfig::new(vec![0.0]), JointConfig::new(vec![1.0]));
        let poses = m.discretize(0.25);
        assert_eq!(poses.len(), 5);
        assert_eq!(poses[0], m.from);
        assert_eq!(poses[4], m.to);
        for w in poses.windows(2) {
            assert!((w[0].linf_distance(&w[1]) - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn descriptor_reconstructs_poses() {
        let m = Motion::new(
            JointConfig::new(vec![0.2, -0.3, 0.5]),
            JointConfig::new(vec![-0.4, 0.9, 0.5]),
        );
        let d = m.descriptor(0.13);
        assert_eq!(d.count, m.pose_count(0.13));
        for i in 0..d.count {
            let direct = m.pose(i, d.count);
            let via = d.pose(i);
            for j in 0..3 {
                assert!((direct[j] - via[j]).abs() < 1e-5);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn descriptor_pose_bounds() {
        let m = Motion::new(JointConfig::zeros(1), JointConfig::new(vec![1.0]));
        let d = m.descriptor(0.5);
        let _ = d.pose(d.count);
    }

    #[test]
    fn motion_length() {
        let m = Motion::new(
            JointConfig::new(vec![0.0, 0.0]),
            JointConfig::new(vec![3.0, 4.0]),
        );
        assert_eq!(m.length(), 5.0);
    }
}
