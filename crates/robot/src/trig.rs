//! The fifth-order trigonometric function unit of the OBB Generation Unit.
//!
//! §5.2: "We use a fifth-order approximation-based trigonometric function
//! unit [de Dinechin et al.]. The trigonometric function unit is a 5-stage
//! pipelined unit consisting of 8 multipliers, 3 adders/subtractors, and
//! registers."
//!
//! This module models that unit bit-faithfully enough for the simulator: a
//! fifth-order odd polynomial (Hastings coefficients) evaluates `sin` on the
//! reduced range `[-π/2, π/2]`; range reduction maps any angle in `[-π, π]`
//! onto it, and `cos(x) = sin(π/2 - x)` shares the datapath. Both an `f32`
//! and a Q3.12 fixed-point evaluation are provided; the fixed-point path
//! uses only multiplications and additions, like the RTL.

use mp_fixed::Fx;

/// Pipeline depth of the trig unit (§5.2: 5-stage pipelined).
pub const TRIG_LATENCY_CYCLES: u32 = 5;

/// Multipliers instantiated by the unit (§5.2).
pub const TRIG_MULTIPLIERS: u32 = 8;

/// Adders/subtractors instantiated by the unit (§5.2).
pub const TRIG_ADDERS: u32 = 3;

/// Fifth-order sine coefficients (Hastings): `sin x ≈ x + C3·x³ + C5·x⁵`
/// on `[-π/2, π/2]`, max error ≈ 1.6e-4 — below one Q3.12 LSB of the
/// downstream pose arithmetic.
const C3: f32 = -0.16605;
/// See [`C3`].
const C5: f32 = 0.00761;

/// Reduces an angle to `[-π, π)` (software helper; joint values are already
/// bounded by joint limits in practice).
pub fn wrap_angle(x: f32) -> f32 {
    let two_pi = core::f32::consts::TAU;
    let mut r = x % two_pi;
    if r >= core::f32::consts::PI {
        r -= two_pi;
    } else if r < -core::f32::consts::PI {
        r += two_pi;
    }
    r
}

/// Fifth-order polynomial `sin` on the already-reduced range.
fn poly_sin(x: f32) -> f32 {
    let x2 = x * x;
    x * (1.0 + x2 * (C3 + x2 * C5))
}

/// Approximate sine as the hardware computes it (`f32` model).
///
/// # Examples
///
/// ```
/// use mp_robot::trig::approx_sin;
/// assert!((approx_sin(0.5) - 0.5f32.sin()).abs() < 2e-4);
/// ```
pub fn approx_sin(angle: f32) -> f32 {
    let x = wrap_angle(angle);
    // Fold onto [-π/2, π/2]: sin(π - x) = sin(x).
    let reduced = if x > core::f32::consts::FRAC_PI_2 {
        core::f32::consts::PI - x
    } else if x < -core::f32::consts::FRAC_PI_2 {
        -core::f32::consts::PI - x
    } else {
        x
    };
    poly_sin(reduced)
}

/// Approximate cosine: `cos x = sin(π/2 - x)`, sharing the sine datapath.
pub fn approx_cos(angle: f32) -> f32 {
    approx_sin(core::f32::consts::FRAC_PI_2 - angle)
}

/// Approximate `(sin, cos)` pair, as produced per joint per pose.
pub fn approx_sin_cos(angle: f32) -> (f32, f32) {
    (approx_sin(angle), approx_cos(angle))
}

/// Fixed-point fifth-order sine on Q3.12, using only the operations the RTL
/// has (multiplies, adds). Input is radians in Q3.12 (any value in
/// `[-8, 8)`; reduction is performed in fixed point).
pub fn fx_sin(angle: Fx) -> Fx {
    let pi = Fx::from_f32(core::f32::consts::PI);
    let half_pi = Fx::from_f32(core::f32::consts::FRAC_PI_2);
    // Range reduce to [-π, π] with up to two conditional subtracts (the
    // hardware bounds joint angles, so this loop is 0-2 iterations).
    let mut x = angle;
    while x > pi {
        x = x - pi - pi;
    }
    while x < -pi {
        x = x + pi + pi;
    }
    // Fold onto [-π/2, π/2].
    if x > half_pi {
        x = pi - x;
    } else if x < -half_pi {
        x = -pi - x;
    }
    let c3 = Fx::from_f32(C3);
    let c5 = Fx::from_f32(C5);
    let x2 = x * x;
    // Horner: x * (1 + x2*(C3 + x2*C5)) — 4 multiplies, 2 adds.
    x * (Fx::ONE + x2 * (c3 + x2 * c5))
}

/// Fixed-point cosine.
pub fn fx_cos(angle: Fx) -> Fx {
    fx_sin(Fx::from_f32(core::f32::consts::FRAC_PI_2) - angle)
}

/// Worst-case absolute error of the approximation over `[-π, π]`, measured
/// by dense sweep. Used by tests and documentation; the returned value is
/// ≈ 1.6e-4 for the `f32` path.
pub fn max_sin_error(samples: u32) -> f32 {
    let mut worst: f32 = 0.0;
    for i in 0..=samples {
        let x = -core::f32::consts::PI + core::f32::consts::TAU * i as f32 / samples as f32;
        worst = worst.max((approx_sin(x) - x.sin()).abs());
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::f32::consts::{FRAC_PI_2, PI};

    #[test]
    fn sin_accuracy_on_reduced_range() {
        assert!(
            max_sin_error(10_000) < 2e-4,
            "error {}",
            max_sin_error(10_000)
        );
    }

    #[test]
    fn special_angles() {
        assert_eq!(approx_sin(0.0), 0.0);
        assert!((approx_sin(FRAC_PI_2) - 1.0).abs() < 2e-4);
        assert!((approx_sin(PI)).abs() < 2e-4);
        assert!((approx_cos(0.0) - 1.0).abs() < 2e-4);
        assert!((approx_cos(PI) + 1.0).abs() < 2e-4);
    }

    #[test]
    fn sin_is_odd_cos_is_even() {
        for x in [0.1f32, 0.9, 2.2, 3.0] {
            assert!((approx_sin(-x) + approx_sin(x)).abs() < 1e-6);
            assert!((approx_cos(-x) - approx_cos(x)).abs() < 1e-6);
        }
    }

    #[test]
    fn wrap_angle_bounds() {
        for x in [-10.0f32, -3.2, 0.0, 3.2, 10.0, 100.0] {
            let w = wrap_angle(x);
            assert!((-PI..PI).contains(&w), "{x} -> {w}");
            // Wrapping preserves the true sine.
            assert!((w.sin() - x.sin()).abs() < 1e-4);
        }
    }

    #[test]
    fn pythagorean_identity_approx() {
        for i in 0..100 {
            let x = -PI + i as f32 * (2.0 * PI / 100.0);
            let (s, c) = approx_sin_cos(x);
            assert!((s * s + c * c - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn fixed_point_sin_tracks_f32_model() {
        for i in 0..200 {
            let x = -PI + i as f32 * (2.0 * PI / 200.0);
            let fx = fx_sin(Fx::from_f32(x)).to_f32();
            // Fixed-point adds quantization noise on top of the polynomial
            // error; a few LSBs of slack.
            assert!(
                (fx - x.sin()).abs() < 4e-3,
                "x={x} fx={fx} true={}",
                x.sin()
            );
        }
    }

    #[test]
    fn fixed_point_cos_tracks_f32_model() {
        for i in 0..200 {
            let x = -PI + i as f32 * (2.0 * PI / 200.0);
            let fx = fx_cos(Fx::from_f32(x)).to_f32();
            assert!((fx - x.cos()).abs() < 4e-3, "x={x}");
        }
    }

    #[test]
    fn unit_resource_constants_match_paper() {
        assert_eq!(TRIG_LATENCY_CYCLES, 5);
        assert_eq!(TRIG_MULTIPLIERS, 8);
        assert_eq!(TRIG_ADDERS, 3);
    }
}
