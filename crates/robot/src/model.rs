//! Robot models: DH chains plus per-link collision geometry.
//!
//! §6 evaluates a Kinova Jaco2 (6 DOF) and a Rethink Baxter arm (7 DOF);
//! "both robotic arms consist of 7 links". The models here encode the DH
//! chains and per-link bounding boxes directly from the public spec-sheet
//! dimensions, normalized so the paper's 180 cm environment extent maps to
//! the workspace cube `[-1, 1]³` (i.e. lengths in meters are divided by
//! 0.9).

use rand::Rng;

use mp_geometry::Vec3;

use crate::cspace::{JointConfig, JointLimit};
use crate::dh::DhParam;

/// Scale: normalized units per meter (180 cm extent → `[-1, 1]`).
pub const UNITS_PER_METER: f32 = 1.0 / 0.9;

/// Collision geometry of one robot link: a box in the frame of one joint.
///
/// The box half-extents (and the derived bounding/inscribed sphere radii)
/// are the per-link constants §5.2 stores in the OBB Generation Unit's
/// SRAM; the frame transform is what gets computed per pose.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkGeometry {
    /// Index of the joint frame the box is rigidly attached to: 0 attaches
    /// to the immobile base frame, `i ≥ 1` to the frame after joint `i`.
    pub frame: usize,
    /// Box center in the attachment frame.
    pub local_center: Vec3,
    /// Box half-extents in the attachment frame.
    pub half: Vec3,
}

impl LinkGeometry {
    /// Creates a link box.
    pub fn new(frame: usize, local_center: Vec3, half: Vec3) -> LinkGeometry {
        LinkGeometry {
            frame,
            local_center,
            half: half.abs(),
        }
    }
}

/// A robot: DH chain, joint limits and link collision boxes.
///
/// # Examples
///
/// ```
/// use mp_robot::RobotModel;
///
/// let jaco = RobotModel::jaco2();
/// assert_eq!(jaco.dof(), 6);
/// assert_eq!(jaco.link_count(), 7);
/// let baxter = RobotModel::baxter();
/// assert_eq!(baxter.dof(), 7);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct RobotModel {
    name: &'static str,
    dh: Vec<DhParam>,
    limits: Vec<JointLimit>,
    links: Vec<LinkGeometry>,
}

impl RobotModel {
    /// Builds a model from its parts.
    ///
    /// # Panics
    ///
    /// Panics if limits and DH rows disagree, or a link references a frame
    /// beyond the chain.
    pub fn new(
        name: &'static str,
        dh: Vec<DhParam>,
        limits: Vec<JointLimit>,
        links: Vec<LinkGeometry>,
    ) -> RobotModel {
        assert_eq!(dh.len(), limits.len(), "one joint limit per DH row");
        for l in &links {
            assert!(
                l.frame <= dh.len(),
                "link frame {} exceeds joint count {}",
                l.frame,
                dh.len()
            );
        }
        RobotModel {
            name,
            dh,
            limits,
            links,
        }
    }

    /// Robot name.
    pub fn name(&self) -> &str {
        self.name
    }

    /// Degrees of freedom.
    pub fn dof(&self) -> usize {
        self.dh.len()
    }

    /// Number of collision links (7 for both evaluation arms).
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The DH rows.
    pub fn dh_params(&self) -> &[DhParam] {
        &self.dh
    }

    /// The joint limits.
    pub fn joint_limits(&self) -> &[JointLimit] {
        &self.limits
    }

    /// The link boxes.
    pub fn links(&self) -> &[LinkGeometry] {
        &self.links
    }

    /// Samples a uniformly random configuration within the joint limits.
    pub fn sample_config(&self, rng: &mut impl Rng) -> JointConfig {
        JointConfig::new(self.limits.iter().map(|l| l.sample(rng)).collect())
    }

    /// Clamps a configuration into the joint limits.
    pub fn clamp_config(&self, cfg: &JointConfig) -> JointConfig {
        assert_eq!(cfg.dof(), self.dof(), "DOF mismatch");
        JointConfig::new(
            cfg.as_slice()
                .iter()
                .zip(&self.limits)
                .map(|(&v, l)| l.clamp(v))
                .collect(),
        )
    }

    /// The zero (home) configuration.
    pub fn home(&self) -> JointConfig {
        self.clamp_config(&JointConfig::zeros(self.dof()))
    }

    /// Kinova Jaco2: 6 DOF, 7 links (§6). Segment lengths follow the Kinova
    /// spec sheet (D1 = 27.55 cm, D2 = 41 cm, D3 = 20.73 cm, wrist segments
    /// 7.4 cm, hand 16.87 cm), normalized by [`UNITS_PER_METER`].
    pub fn jaco2() -> RobotModel {
        use core::f32::consts::{FRAC_PI_2, PI};
        let m = UNITS_PER_METER;
        let (d1, a2, d3, d4, d5, d6) = (
            0.2755 * m,
            0.4100 * m,
            0.2073 * m,
            0.0741 * m,
            0.0741 * m,
            0.1687 * m,
        );
        let r = 0.045 * m; // link tube radius ≈ 4.5 cm
        let dh = vec![
            DhParam::new(0.0, FRAC_PI_2, d1, 0.0),
            DhParam::new(a2, PI, 0.0, FRAC_PI_2),
            DhParam::new(0.0, FRAC_PI_2, -0.0098 * m, -FRAC_PI_2),
            DhParam::new(0.0, FRAC_PI_2, -d3, 0.0),
            DhParam::new(0.0, FRAC_PI_2, -d4, PI),
            DhParam::new(0.0, PI, -d5 - d6, 0.0),
        ];
        let limits = vec![
            JointLimit::symmetric(PI),
            JointLimit::new(0.82, 5.46 - PI), // shoulder lift, offset-adjusted
            JointLimit::new(0.33 - PI, PI - 0.33),
            JointLimit::symmetric(PI),
            JointLimit::symmetric(PI),
            JointLimit::symmetric(PI),
        ];
        let links = vec![
            // Base column up to the first joint.
            LinkGeometry::new(
                0,
                Vec3::new(0.0, 0.0, d1 * 0.5),
                Vec3::new(r, r, d1 * 0.5 + r),
            ),
            // Shoulder housing.
            LinkGeometry::new(
                1,
                Vec3::new(0.0, 0.0, 0.0),
                Vec3::new(r * 1.2, r * 1.2, r * 1.4),
            ),
            // Upper arm: spans the a2 translation of joint 2's frame.
            LinkGeometry::new(
                2,
                Vec3::new(-a2 * 0.5, 0.0, 0.0),
                Vec3::new(a2 * 0.5 + r, r, r),
            ),
            // Elbow housing.
            LinkGeometry::new(
                3,
                Vec3::new(0.0, 0.0, -d3 * 0.25),
                Vec3::new(r, r, d3 * 0.3),
            ),
            // Forearm along the d translation of joint 4.
            LinkGeometry::new(4, Vec3::new(0.0, 0.0, d3 * 0.35), Vec3::new(r, r, d3 * 0.4)),
            // Wrist.
            LinkGeometry::new(
                5,
                Vec3::new(0.0, 0.0, d4 * 0.5),
                Vec3::new(r * 0.9, r * 0.9, d4 * 0.7),
            ),
            // Hand / gripper.
            LinkGeometry::new(
                6,
                Vec3::new(0.0, 0.0, d6 * 0.4),
                Vec3::new(r, r * 1.4, d6 * 0.55),
            ),
        ];
        RobotModel::new("jaco2", dh, limits, links)
    }

    /// Rethink Baxter arm: 7 DOF, 7 links (§6). Segment lengths from the
    /// Baxter spec (shoulder offset 6.9 cm, upper arm 36.4 cm, forearm
    /// 37.4 cm, wrist 22.9 cm), normalized by [`UNITS_PER_METER`].
    pub fn baxter() -> RobotModel {
        use core::f32::consts::FRAC_PI_2;
        let m = UNITS_PER_METER;
        let (d1, a1, d3, a3, d5, d7) = (
            0.2703 * m,
            0.0690 * m,
            0.3644 * m,
            0.0690 * m,
            0.3743 * m,
            0.2295 * m,
        );
        let r = 0.055 * m; // Baxter links are chunkier than Jaco2's
        let dh = vec![
            DhParam::new(a1, -FRAC_PI_2, d1, 0.0),
            DhParam::new(0.0, FRAC_PI_2, 0.0, FRAC_PI_2),
            DhParam::new(a3, -FRAC_PI_2, d3, 0.0),
            DhParam::new(0.0, FRAC_PI_2, 0.0, 0.0),
            DhParam::new(0.01 * m, -FRAC_PI_2, d5, 0.0),
            DhParam::new(0.0, FRAC_PI_2, 0.0, 0.0),
            DhParam::new(0.0, 0.0, d7, 0.0),
        ];
        let limits = vec![
            JointLimit::new(-1.70, 1.70),
            JointLimit::new(-2.14, 1.04),
            JointLimit::new(-3.05, 3.05),
            JointLimit::new(-0.05, 2.61),
            JointLimit::new(-3.05, 3.05),
            JointLimit::new(-1.57, 2.09),
            JointLimit::new(-3.05, 3.05),
        ];
        let links = vec![
            // Shoulder column.
            LinkGeometry::new(
                0,
                Vec3::new(0.0, 0.0, d1 * 0.5),
                Vec3::new(r, r, d1 * 0.5 + r),
            ),
            // Shoulder housing.
            LinkGeometry::new(
                1,
                Vec3::new(0.0, 0.0, 0.0),
                Vec3::new(r * 1.3, r * 1.3, r * 1.3),
            ),
            // Upper arm along joint 3's d translation.
            LinkGeometry::new(
                3,
                Vec3::new(0.0, 0.0, -d3 * 0.45),
                Vec3::new(r, r, d3 * 0.5 + r),
            ),
            // Elbow housing.
            LinkGeometry::new(
                4,
                Vec3::new(0.0, 0.0, 0.0),
                Vec3::new(r * 1.1, r * 1.1, r * 1.1),
            ),
            // Forearm along joint 5's d translation.
            LinkGeometry::new(
                5,
                Vec3::new(0.0, 0.0, -d5 * 0.45),
                Vec3::new(r * 0.9, r * 0.9, d5 * 0.5 + r),
            ),
            // Wrist.
            LinkGeometry::new(6, Vec3::new(0.0, 0.0, 0.0), Vec3::new(r * 0.8, r * 0.8, r)),
            // Hand / gripper along joint 7's d translation.
            LinkGeometry::new(
                7,
                Vec3::new(0.0, 0.0, -d7 * 0.35),
                Vec3::new(r * 0.8, r, d7 * 0.45),
            ),
        ];
        RobotModel::new("baxter", dh, limits, links)
    }

    /// Universal Robots UR5e: 6 DOF, 7 links. Not part of the paper's
    /// evaluation; included to demonstrate that the stack generalizes
    /// beyond the two evaluation arms (DH parameters from the UR spec).
    pub fn ur5e() -> RobotModel {
        use core::f32::consts::{FRAC_PI_2, PI};
        let m = UNITS_PER_METER;
        let (d1, a2, a3, d4, d5, d6) = (
            0.1625 * m,
            0.425 * m,
            0.3922 * m,
            0.1333 * m,
            0.0997 * m,
            0.0996 * m,
        );
        let r = 0.045 * m;
        let dh = vec![
            DhParam::new(0.0, FRAC_PI_2, d1, 0.0),
            DhParam::new(-a2, 0.0, 0.0, 0.0),
            DhParam::new(-a3, 0.0, 0.0, 0.0),
            DhParam::new(0.0, FRAC_PI_2, d4, 0.0),
            DhParam::new(0.0, -FRAC_PI_2, d5, 0.0),
            DhParam::new(0.0, 0.0, d6, 0.0),
        ];
        let limits = vec![JointLimit::symmetric(PI); 6];
        let links = vec![
            LinkGeometry::new(
                0,
                Vec3::new(0.0, 0.0, d1 * 0.5),
                Vec3::new(r, r, d1 * 0.5 + r),
            ),
            LinkGeometry::new(
                1,
                Vec3::new(0.0, 0.0, 0.0),
                Vec3::new(r * 1.2, r * 1.2, r * 1.2),
            ),
            LinkGeometry::new(
                2,
                Vec3::new(a2 * 0.5, 0.0, 0.0),
                Vec3::new(a2 * 0.5 + r, r, r),
            ),
            LinkGeometry::new(
                3,
                Vec3::new(a3 * 0.5, 0.0, 0.0),
                Vec3::new(a3 * 0.5 + r, r, r),
            ),
            LinkGeometry::new(
                4,
                Vec3::new(0.0, 0.0, -d4 * 0.3),
                Vec3::new(r * 0.9, r * 0.9, d4 * 0.4),
            ),
            LinkGeometry::new(
                5,
                Vec3::new(0.0, 0.0, -d5 * 0.3),
                Vec3::new(r * 0.8, r * 0.8, d5 * 0.4),
            ),
            LinkGeometry::new(
                6,
                Vec3::new(0.0, 0.0, -d6 * 0.4),
                Vec3::new(r * 0.8, r * 0.8, d6 * 0.5),
            ),
        ];
        RobotModel::new("ur5e", dh, limits, links)
    }

    /// A 2-DOF planar arm — the didactic robot of Fig 6a, handy for fast
    /// tests and examples.
    pub fn planar_2dof() -> RobotModel {
        use core::f32::consts::PI;
        let l = 0.4;
        let r = 0.04;
        let dh = vec![
            DhParam::new(l, 0.0, 0.0, 0.0),
            DhParam::new(l, 0.0, 0.0, 0.0),
        ];
        let limits = vec![JointLimit::symmetric(PI), JointLimit::symmetric(PI)];
        let links = vec![
            LinkGeometry::new(
                1,
                Vec3::new(-l * 0.5, 0.0, 0.0),
                Vec3::new(l * 0.5 + r, r, r),
            ),
            LinkGeometry::new(
                2,
                Vec3::new(-l * 0.5, 0.0, 0.0),
                Vec3::new(l * 0.5 + r, r, r),
            ),
        ];
        RobotModel::new("planar-2dof", dh, limits, links)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn jaco2_shape_matches_paper() {
        let r = RobotModel::jaco2();
        assert_eq!(r.dof(), 6);
        assert_eq!(r.link_count(), 7);
        assert_eq!(r.name(), "jaco2");
    }

    #[test]
    fn baxter_shape_matches_paper() {
        let r = RobotModel::baxter();
        assert_eq!(r.dof(), 7);
        assert_eq!(r.link_count(), 7);
    }

    #[test]
    fn ur5e_shape_and_reach() {
        let r = RobotModel::ur5e();
        assert_eq!(r.dof(), 6);
        assert_eq!(r.link_count(), 7);
        // Reach ≈ 0.85 m -> ~0.94 normalized; FK corners stay inside 1.5.
        use crate::fk::link_obbs;
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..50 {
            let cfg = r.sample_config(&mut rng);
            for obb in link_obbs(&r, &cfg, crate::TrigMode::Exact) {
                for c in obb.corners() {
                    assert!(c.length() < 1.5, "corner {c:?} beyond reach");
                }
            }
        }
    }

    #[test]
    fn planar_arm_is_small() {
        let r = RobotModel::planar_2dof();
        assert_eq!(r.dof(), 2);
        assert_eq!(r.link_count(), 2);
    }

    #[test]
    fn sampled_configs_respect_limits() {
        let r = RobotModel::baxter();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let c = r.sample_config(&mut rng);
            assert_eq!(c.dof(), 7);
            for (v, l) in c.as_slice().iter().zip(r.joint_limits()) {
                assert!(*v >= l.lo && *v <= l.hi);
            }
        }
    }

    #[test]
    fn clamp_config_enforces_limits() {
        let r = RobotModel::baxter();
        let wild = JointConfig::new(vec![10.0, -10.0, 0.0, 10.0, 0.0, 0.0, -10.0]);
        let c = r.clamp_config(&wild);
        for (v, l) in c.as_slice().iter().zip(r.joint_limits()) {
            assert!(*v >= l.lo && *v <= l.hi);
        }
    }

    #[test]
    fn home_is_within_limits() {
        for r in [
            RobotModel::jaco2(),
            RobotModel::baxter(),
            RobotModel::planar_2dof(),
        ] {
            let h = r.home();
            for (v, l) in h.as_slice().iter().zip(r.joint_limits()) {
                assert!(*v >= l.lo && *v <= l.hi);
            }
        }
    }

    #[test]
    #[should_panic(expected = "link frame")]
    fn link_frame_out_of_range_rejected() {
        let _ = RobotModel::new(
            "bad",
            vec![DhParam::new(0.0, 0.0, 0.1, 0.0)],
            vec![JointLimit::symmetric(1.0)],
            vec![LinkGeometry::new(2, Vec3::zero(), Vec3::splat(0.1))],
        );
    }
}
