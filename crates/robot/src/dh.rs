//! Denavit–Hartenberg kinematics.
//!
//! §5.2: "The transformation matrix generator calculates a transformation
//! matrix (4×4) for each link for this pose. This matrix is used to find
//! the rotation and translation of a robot link's bounding box [12, 36]."
//! Reference \[12\] is the original Denavit–Hartenberg notation, which we
//! implement here in its *classic* convention.

use mp_geometry::{Mat3, Transform, Vec3};

use crate::trig::{approx_cos, approx_sin};

/// Classic Denavit–Hartenberg parameters of one revolute joint.
///
/// The joint's transform is
/// `Rot_z(θ + θ₀) · Trans_z(d) · Trans_x(a) · Rot_x(α)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DhParam {
    /// Link length `a` (translation along the rotated x axis).
    pub a: f32,
    /// Link twist `α` (rotation about the x axis), radians.
    pub alpha: f32,
    /// Link offset `d` (translation along the joint z axis).
    pub d: f32,
    /// Constant joint-angle offset `θ₀` added to the joint variable.
    pub theta_offset: f32,
}

impl DhParam {
    /// Creates a DH row.
    pub fn new(a: f32, alpha: f32, d: f32, theta_offset: f32) -> DhParam {
        DhParam {
            a,
            alpha,
            d,
            theta_offset,
        }
    }

    /// The joint transform for joint variable `theta`, using exact `f32`
    /// trigonometry (software reference).
    pub fn transform(&self, theta: f32) -> Transform {
        self.transform_with(theta, f32::sin, f32::cos)
    }

    /// The joint transform using the hardware's fifth-order trig
    /// approximation (what the OBB Generation Unit computes).
    pub fn transform_hw(&self, theta: f32) -> Transform {
        self.transform_with(theta, approx_sin, approx_cos)
    }

    fn transform_with(
        &self,
        theta: f32,
        sin: impl Fn(f32) -> f32,
        cos: impl Fn(f32) -> f32,
    ) -> Transform {
        let th = theta + self.theta_offset;
        let (st, ct) = (sin(th), cos(th));
        // The twist α is a robot constant, so its sine/cosine are
        // precomputed at full precision even in hardware.
        let (sa, ca) = self.alpha.sin_cos();
        // Classic DH homogeneous matrix.
        let rotation = Mat3::from_rows(
            Vec3::new(ct, -st * ca, st * sa),
            Vec3::new(st, ct * ca, -ct * sa),
            Vec3::new(0.0, sa, ca),
        );
        let translation = Vec3::new(self.a * ct, self.a * st, self.d);
        Transform::new(rotation, translation)
    }
}

/// Precision mode for kinematics evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TrigMode {
    /// Exact library trigonometry (software oracle).
    #[default]
    Exact,
    /// The fifth-order hardware approximation of [`crate::trig`].
    Hardware,
}

/// Computes the cumulative joint-frame transforms for a DH chain.
///
/// Returns one transform per joint: `out[i]` maps frame `i+1` coordinates to
/// the world (base) frame.
///
/// # Panics
///
/// Panics if `thetas.len() != params.len()`.
pub fn chain_transforms(params: &[DhParam], thetas: &[f32], mode: TrigMode) -> Vec<Transform> {
    let mut out = Vec::with_capacity(params.len());
    chain_transforms_into(params, thetas, mode, &mut out);
    out
}

/// [`chain_transforms`] appending into a caller-owned buffer — collision
/// checkers run FK once per pose query, and reusing the buffer keeps the
/// hot path free of per-pose allocations.
///
/// # Panics
///
/// Panics if `params.len() != thetas.len()`.
pub fn chain_transforms_into(
    params: &[DhParam],
    thetas: &[f32],
    mode: TrigMode,
    out: &mut Vec<Transform>,
) {
    assert_eq!(
        params.len(),
        thetas.len(),
        "joint count mismatch: {} DH rows vs {} joint values",
        params.len(),
        thetas.len()
    );
    out.reserve(params.len());
    let mut acc = Transform::identity();
    for (p, &th) in params.iter().zip(thetas) {
        let local = match mode {
            TrigMode::Exact => p.transform(th),
            TrigMode::Hardware => p.transform_hw(th),
        };
        acc = acc.compose(&local);
        out.push(acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::f32::consts::FRAC_PI_2;

    fn close(a: Vec3, b: Vec3, tol: f32) -> bool {
        (a - b).length() < tol
    }

    #[test]
    fn pure_z_rotation_joint() {
        let p = DhParam::new(0.0, 0.0, 0.0, 0.0);
        let t = p.transform(FRAC_PI_2);
        assert!(close(t.apply(Vec3::basis(0)), Vec3::basis(1), 1e-6));
        assert_eq!(t.translation, Vec3::zero());
    }

    #[test]
    fn link_length_translates_along_rotated_x() {
        let p = DhParam::new(1.0, 0.0, 0.0, 0.0);
        let t = p.transform(FRAC_PI_2);
        assert!(close(t.translation, Vec3::new(0.0, 1.0, 0.0), 1e-6));
    }

    #[test]
    fn offset_d_translates_along_z() {
        let p = DhParam::new(0.0, 0.0, 0.5, 0.0);
        let t = p.transform(0.3);
        assert_eq!(t.translation.z, 0.5);
    }

    #[test]
    fn alpha_twist_reorients_z() {
        let p = DhParam::new(0.0, FRAC_PI_2, 0.0, 0.0);
        let t = p.transform(0.0);
        // New z axis maps onto world -y? With classic DH, frame z after a
        // +90° twist about x points along world y when θ=0... verify by the
        // matrix: column 2 = (st*sa, -ct*sa, ca) = (0, -1, 0).
        assert!(close(t.apply_vector(Vec3::basis(2)), -Vec3::basis(1), 1e-6));
    }

    #[test]
    fn theta_offset_shifts_joint_zero() {
        let p = DhParam::new(0.0, 0.0, 0.0, FRAC_PI_2);
        let a = p.transform(0.0);
        let q = DhParam::new(0.0, 0.0, 0.0, 0.0);
        let b = q.transform(FRAC_PI_2);
        assert!(close(
            a.apply(Vec3::basis(0)),
            b.apply(Vec3::basis(0)),
            1e-6
        ));
    }

    #[test]
    fn rotation_stays_orthonormal_along_chain() {
        let params = vec![
            DhParam::new(0.1, FRAC_PI_2, 0.2, 0.0),
            DhParam::new(0.4, 0.0, 0.0, -FRAC_PI_2),
            DhParam::new(0.0, -FRAC_PI_2, 0.3, 0.0),
        ];
        let ts = chain_transforms(&params, &[0.3, -0.7, 1.2], TrigMode::Exact);
        assert_eq!(ts.len(), 3);
        for t in &ts {
            assert!(t.rotation.orthonormality_error() < 1e-5);
        }
    }

    #[test]
    fn hardware_trig_stays_close_to_exact() {
        let params = vec![
            DhParam::new(0.1, FRAC_PI_2, 0.2, 0.0),
            DhParam::new(0.4, 0.0, 0.0, 0.0),
            DhParam::new(0.2, -FRAC_PI_2, 0.1, 0.5),
        ];
        let thetas = [0.9, -1.4, 2.2];
        let exact = chain_transforms(&params, &thetas, TrigMode::Exact);
        let hw = chain_transforms(&params, &thetas, TrigMode::Hardware);
        for (e, h) in exact.iter().zip(&hw) {
            assert!(close(e.translation, h.translation, 1e-3));
            assert!((e.rotation.at(0, 0) - h.rotation.at(0, 0)).abs() < 1e-3);
        }
    }

    #[test]
    #[should_panic(expected = "joint count mismatch")]
    fn chain_validates_lengths() {
        let _ = chain_transforms(
            &[DhParam::new(0.0, 0.0, 0.0, 0.0)],
            &[0.0, 1.0],
            TrigMode::Exact,
        );
    }
}
