//! Robot substrate for the MPAccel reproduction.
//!
//! Everything the accelerator needs to know about the robot:
//!
//! * [`dh`] — Denavit–Hartenberg kinematics (§5.2's transformation-matrix
//!   generator), with exact and hardware-approximate trigonometry,
//! * [`trig`] — the fifth-order trigonometric function unit model,
//! * [`model`] — robot descriptions: DH chain + joint limits + per-link
//!   collision boxes; presets for the two evaluation arms (Kinova Jaco2,
//!   6 DOF; Rethink Baxter, 7 DOF; both 7 links) and a 2-DOF planar arm,
//! * [`fk`] — forward kinematics producing the per-link OBB set (the OBB
//!   Generation Unit's output),
//! * [`cspace`] — joint configurations, C-space motions and their
//!   discretization into the pose sequences SAS schedules.
//!
//! # Examples
//!
//! ```
//! use mp_robot::{fk, RobotModel, TrigMode};
//!
//! let robot = RobotModel::baxter();
//! let obbs = fk::link_obbs(&robot, &robot.home(), TrigMode::Hardware);
//! assert_eq!(obbs.len(), 7); // one OBB per link
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cspace;
pub mod dh;
pub mod fk;
pub mod model;
pub mod trig;

pub use cspace::{JointConfig, JointLimit, Motion, MotionDescriptor};
pub use dh::{DhParam, TrigMode};
pub use model::{LinkGeometry, RobotModel, UNITS_PER_METER};
