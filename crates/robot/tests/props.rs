//! Property-based tests for kinematics and C-space utilities.

use mp_fixed::Fx;
use mp_robot::fk::{joint_frames, link_obbs};
use mp_robot::trig::{approx_cos, approx_sin, fx_cos, fx_sin};
use mp_robot::{JointConfig, Motion, RobotModel, TrigMode};
use proptest::prelude::*;

fn any_config(dof: usize) -> impl Strategy<Value = JointConfig> {
    prop::collection::vec(-3.0f32..3.0, dof).prop_map(JointConfig::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Approximate trig always stays within its error budget and satisfies
    /// symmetry identities.
    #[test]
    fn trig_error_budget(x in -core::f32::consts::PI..core::f32::consts::PI) {
        prop_assert!((approx_sin(x) - x.sin()).abs() < 2e-4);
        prop_assert!((approx_cos(x) - x.cos()).abs() < 2e-4);
        prop_assert!((fx_sin(Fx::from_f32(x)).to_f32() - x.sin()).abs() < 5e-3);
        prop_assert!((fx_cos(Fx::from_f32(x)).to_f32() - x.cos()).abs() < 5e-3);
    }

    /// FK rotations stay orthonormal for arbitrary (even out-of-limit)
    /// joint values.
    #[test]
    fn fk_rotations_orthonormal(cfg in any_config(7)) {
        let r = RobotModel::baxter();
        for f in joint_frames(&r, &cfg, TrigMode::Exact) {
            prop_assert!(f.rotation.orthonormality_error() < 1e-4);
        }
    }

    /// FK is continuous: a small joint perturbation moves every OBB center
    /// by a bounded amount (Lipschitz in the total arm length).
    #[test]
    fn fk_is_lipschitz(cfg in any_config(6), j in 0usize..6, d in -0.02f32..0.02) {
        let r = RobotModel::jaco2();
        let mut moved = cfg.clone();
        moved.as_mut_slice()[j] += d;
        let a = link_obbs(&r, &cfg, TrigMode::Exact);
        let b = link_obbs(&r, &moved, TrigMode::Exact);
        for (oa, ob) in a.iter().zip(&b) {
            // Total normalized arm length < 1.5; Lipschitz constant ~ reach.
            prop_assert!((oa.center - ob.center).length() <= 2.0 * d.abs() + 1e-6);
        }
    }

    /// Motion discretization: consecutive poses never exceed the step in
    /// any joint, and endpoints are exact.
    #[test]
    fn discretization_respects_step(a in any_config(7), b in any_config(7), step in 0.01f32..0.5) {
        let m = Motion::new(a.clone(), b.clone());
        let poses = m.discretize(step);
        prop_assert!(poses.len() >= 2);
        prop_assert_eq!(poses.first().unwrap(), &a);
        prop_assert_eq!(poses.last().unwrap(), &b);
        for w in poses.windows(2) {
            prop_assert!(w[0].linf_distance(&w[1]) <= step + 1e-4);
        }
    }

    /// The hardware motion descriptor reconstructs the same poses as direct
    /// interpolation.
    #[test]
    fn descriptor_equals_lerp(a in any_config(6), b in any_config(6)) {
        let m = Motion::new(a, b);
        let d = m.descriptor(0.1);
        for i in 0..d.count {
            let direct = m.pose(i, d.count);
            let via = d.pose(i);
            for j in 0..6 {
                prop_assert!((direct[j] - via[j]).abs() < 1e-4);
            }
        }
    }

    /// Hardware-trig FK deviates from exact FK by less than the collision
    /// geometry's smallest feature, for in-limit configurations.
    #[test]
    fn hw_fk_deviation_bounded(seed in 0u64..1000) {
        use rand::{rngs::StdRng, SeedableRng};
        let r = RobotModel::baxter();
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = r.sample_config(&mut rng);
        let exact = link_obbs(&r, &cfg, TrigMode::Exact);
        let hw = link_obbs(&r, &cfg, TrigMode::Hardware);
        for (e, h) in exact.iter().zip(&hw) {
            prop_assert!((e.center - h.center).length() < 5e-3);
        }
    }
}
