//! Exact workload measurement: what one OBB–octree query actually does.

use mp_geometry::{Mat3, Obb, Vec3};
use mp_octree::Octree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Average per-query work of the OBB–octree kernel on a given environment,
/// measured by running the real traversal (no timing model involved).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WorkloadStats {
    /// Mean octree nodes fetched per query.
    pub avg_nodes: f64,
    /// Mean OBB–AABB intersection tests per query.
    pub avg_tests: f64,
    /// Mean *union* of nodes fetched across a locality-grouped warp of 32
    /// queries, per thread (captures divergence after the paper's warp
    /// formation optimization).
    pub avg_warp_union_nodes: f64,
    /// Mean union of nodes across an arbitrarily-ordered warp (divergence
    /// without the locality optimization).
    pub avg_warp_union_nodes_unsorted: f64,
    /// Occupied leaf boxes in the environment (work unit of the leaf-node
    /// kernel).
    pub leaf_count: f64,
    /// Fraction of queries that collide.
    pub collision_rate: f64,
}

/// Generates the random link-sized OBBs used to measure the workload
/// (Jaco2-scale link boxes at random poses, as in §7.5's 2^20-query
/// benchmark).
pub fn random_link_obb(rng: &mut StdRng) -> Obb<f32> {
    let c = Vec3::new(
        rng.gen_range(-0.9..0.9),
        rng.gen_range(-0.9..0.9),
        rng.gen_range(-0.9..0.9),
    );
    let h = Vec3::new(
        rng.gen_range(0.03..0.28),
        rng.gen_range(0.03..0.09),
        rng.gen_range(0.03..0.09),
    );
    let r = Mat3::rotation_z(rng.gen_range(-3.0..3.0)) * Mat3::rotation_y(rng.gen_range(-1.5..1.5));
    Obb::new(c, h, r)
}

/// Measures [`WorkloadStats`] over `samples` random queries.
///
/// # Panics
///
/// Panics if `samples == 0`.
pub fn measure_workload(octree: &Octree, samples: usize, seed: u64) -> WorkloadStats {
    assert!(samples > 0, "need at least one sample");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nodes = 0u64;
    let mut tests = 0u64;
    let mut collisions = 0u64;
    let mut per_query_nodes: Vec<Vec<u32>> = Vec::with_capacity(samples);
    let mut centers: Vec<Vec3> = Vec::with_capacity(samples);

    for _ in 0..samples {
        let obb = random_link_obb(&mut rng);
        centers.push(obb.center);
        let mut visited = Vec::new();
        let (hit, _stats) = traverse_recording(octree, &obb, &mut visited);
        nodes += visited.len() as u64;
        tests += count_tests(octree, &visited, &obb);
        if hit {
            collisions += 1;
        }
        per_query_nodes.push(visited);
    }

    // Warp unions: unsorted (submission order) vs locality-sorted by OBB
    // center (the paper's warp-formation optimization).
    let union_of = |idxs: &[usize]| -> u64 {
        let mut set = std::collections::HashSet::new();
        for &i in idxs {
            set.extend(per_query_nodes[i].iter().copied());
        }
        set.len() as u64
    };
    let order_unsorted: Vec<usize> = (0..samples).collect();
    let mut order_sorted = order_unsorted.clone();
    order_sorted.sort_by(|&a, &b| {
        // Morton-ish locality sort by quantized center.
        let key = |v: Vec3| {
            let q = |x: f32| ((x + 1.0) * 8.0) as u32;
            morton3(q(v.x), q(v.y), q(v.z))
        };
        key(centers[a]).cmp(&key(centers[b]))
    });
    let warp_union = |order: &[usize]| -> f64 {
        let mut total = 0u64;
        let mut warps = 0u64;
        for chunk in order.chunks(32) {
            total += union_of(chunk);
            warps += 1;
        }
        total as f64 / warps as f64 / 32.0
    };

    WorkloadStats {
        avg_nodes: nodes as f64 / samples as f64,
        avg_tests: tests as f64 / samples as f64,
        avg_warp_union_nodes: warp_union(&order_sorted),
        avg_warp_union_nodes_unsorted: warp_union(&order_unsorted),
        leaf_count: octree.occupied_leaves().len() as f64,
        collision_rate: collisions as f64 / samples as f64,
    }
}

/// Depth-first traversal recording visited node addresses.
fn traverse_recording(octree: &Octree, obb: &Obb<f32>, visited: &mut Vec<u32>) -> (bool, ()) {
    let mut stack = vec![(0u32, octree.root_aabb())];
    while let Some((addr, aabb)) = stack.pop() {
        visited.push(addr);
        let node = octree.node(addr);
        for octant in 0..8 {
            let occ = node.occupancy(octant);
            if !occ.is_occupied() {
                continue;
            }
            let oct = Octree::octant_aabb(&aabb, octant);
            if !mp_geometry::sat::overlaps(obb, &oct) {
                continue;
            }
            match occ {
                mp_octree::Occupancy::Full => return (true, ()),
                mp_octree::Occupancy::Partial => {
                    stack.push((node.child_address(octant).unwrap(), oct));
                }
                mp_octree::Occupancy::Empty => unreachable!(),
            }
        }
    }
    (false, ())
}

/// Counts intersection tests for the recorded node set.
fn count_tests(octree: &Octree, visited: &[u32], _obb: &Obb<f32>) -> u64 {
    visited
        .iter()
        .map(|&addr| octree.node(addr).occupied_octants().count() as u64)
        .sum()
}

/// Interleaves the low 10 bits of three coordinates (Morton code).
fn morton3(x: u32, y: u32, z: u32) -> u32 {
    let spread = |mut v: u32| {
        v &= 0x3FF;
        v = (v | (v << 16)) & 0x030000FF;
        v = (v | (v << 8)) & 0x0300F00F;
        v = (v | (v << 4)) & 0x030C30C3;
        v = (v | (v << 2)) & 0x09249249;
        v
    };
    spread(x) | (spread(y) << 1) | (spread(z) << 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_octree::{Scene, SceneConfig};

    #[test]
    fn workload_is_measured_sanely() {
        let tree = Scene::random(SceneConfig::paper(), 0).octree();
        let w = measure_workload(&tree, 512, 1);
        assert!(w.avg_nodes >= 1.0);
        assert!(w.avg_tests >= w.avg_nodes - 1.0);
        assert!(w.leaf_count > 0.0);
        assert!((0.0..=1.0).contains(&w.collision_rate));
    }

    #[test]
    fn locality_sorting_reduces_warp_divergence() {
        let tree = Scene::random(SceneConfig::with_obstacles(9), 3).octree();
        let w = measure_workload(&tree, 2048, 2);
        assert!(
            w.avg_warp_union_nodes <= w.avg_warp_union_nodes_unsorted + 1e-9,
            "sorted {} vs unsorted {}",
            w.avg_warp_union_nodes,
            w.avg_warp_union_nodes_unsorted
        );
    }

    #[test]
    fn deterministic() {
        let tree = Scene::random(SceneConfig::paper(), 5).octree();
        assert_eq!(
            measure_workload(&tree, 128, 9),
            measure_workload(&tree, 128, 9)
        );
    }

    #[test]
    fn morton_orders_neighbors_together() {
        assert!(morton3(0, 0, 0) < morton3(1, 1, 1));
        assert_eq!(morton3(1, 0, 0), 1);
        assert_eq!(morton3(0, 1, 0), 2);
        assert_eq!(morton3(0, 0, 1), 4);
    }
}
