//! GPU execution models (NVIDIA Titan V, Jetson TX2).

use crate::workload::WorkloadStats;

/// A GPU platform's cost model.
///
/// One thread performs one OBB–octree query (§7.5). The dominant effects
/// are *warp divergence* — a warp pays for the union of the traversal
/// paths of its 32 threads — and memory divergence on the per-thread
/// traversal queues. Work is priced in SM-cycles and divided by the
/// aggregate SM throughput.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GpuModel {
    /// Platform name as it appears in Table 3.
    pub name: &'static str,
    /// Streaming multiprocessors.
    pub sm_count: u32,
    /// SM clock in GHz.
    pub clock_ghz: f64,
    /// Effective SM-cycles to fetch one octree node for a warp (includes
    /// the amortized memory latency at realistic occupancy).
    pub node_cycles: f64,
    /// SM-cycles for one OBB–AABB intersection test.
    pub test_cycles: f64,
    /// Fraction of peak throughput the irregular traversal kernels sustain
    /// (low: divergence + latency-bound pointer chasing).
    pub occupancy: f64,
    /// Fraction of peak the streaming leaf-node kernel sustains (high:
    /// coherent warps, no traversal).
    pub leaf_occupancy: f64,
    /// SM-cycles per coherent leaf-AABB test in the streaming kernel.
    pub leaf_test_cycles: f64,
    /// Board power in watts (Table 3).
    pub power_w: f64,
}

/// NVIDIA Titan V (80 SMs @ ~1.2 GHz), 156.8 W.
pub const TITAN_V: GpuModel = GpuModel {
    name: "NVIDIA Titan V",
    sm_count: 80,
    clock_ghz: 1.2,
    node_cycles: 220.0,
    test_cycles: 60.0,
    occupancy: 0.15,
    leaf_occupancy: 0.9,
    leaf_test_cycles: 5.0,
    power_w: 156.8,
};

/// NVIDIA Jetson TX2 integrated GPU (2 SMs / 256 CUDA cores @ ~0.85 GHz),
/// 3.5 W.
pub const JETSON_TX2: GpuModel = GpuModel {
    name: "NVIDIA Jetson TX2 GPU",
    sm_count: 2,
    clock_ghz: 0.85,
    node_cycles: 320.0,
    test_cycles: 80.0,
    occupancy: 0.15,
    leaf_occupancy: 0.9,
    leaf_test_cycles: 6.0,
    power_w: 3.5,
};

/// GPU kernel variants of Table 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GpuVariant {
    /// Plain per-thread traversal with submission-order warps.
    Basic,
    /// "+ GPU optimizations": locality-grouped warps (reduces traversal
    /// divergence) and interleaved per-warp queues (reduces memory
    /// divergence; halves the effective node cost).
    Optimized,
    /// One thread per occupied leaf: no divergence, but total work scales
    /// with the leaf count. Wins on big GPUs, loses everywhere else.
    LeafNodes,
}

/// Wall-clock milliseconds to run `queries` OBB–octree queries.
pub fn gpu_cd_time_ms(
    model: &GpuModel,
    variant: GpuVariant,
    workload: &WorkloadStats,
    queries: u64,
) -> f64 {
    // A diverged warp serializes the union of its threads' traversals; the
    // per-query cost scales the coherent unit work by
    // union-per-thread / per-thread-nodes (1/32 fully coherent … 1 fully
    // diverged).
    let unit_work =
        |node_c: f64| workload.avg_nodes * node_c + workload.avg_tests * model.test_cycles;
    let divergence =
        |union_per_thread: f64| (union_per_thread / workload.avg_nodes).max(1.0 / 32.0);
    let (per_query_cycles, occupancy) = match variant {
        GpuVariant::Basic => (
            unit_work(model.node_cycles) * divergence(workload.avg_warp_union_nodes_unsorted),
            model.occupancy,
        ),
        GpuVariant::Optimized => (
            // Locality warps shrink the union; interleaved queues cut the
            // per-node memory cost by ~30%.
            unit_work(model.node_cycles * 0.7) * divergence(workload.avg_warp_union_nodes),
            model.occupancy,
        ),
        GpuVariant::LeafNodes => (
            // Every query streams over all occupied leaves with coherent
            // warps: no divergence, cheap tests, high occupancy.
            workload.leaf_count * model.leaf_test_cycles,
            model.leaf_occupancy,
        ),
    };
    let aggregate_hz = model.sm_count as f64 * model.clock_ghz * 1e9 * occupancy;
    per_query_cycles * queries as f64 / aggregate_hz * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{cpu_cd_time_ms, CpuVariant, CORTEX_A57, I7_4771};
    use crate::workload::measure_workload;
    use mp_octree::{Scene, SceneConfig};

    fn workload() -> WorkloadStats {
        measure_workload(&Scene::random(SceneConfig::paper(), 0).octree(), 2048, 7)
    }

    const Q: u64 = 1 << 20;

    #[test]
    fn titan_beats_tx2_by_a_large_factor() {
        let w = workload();
        let titan = gpu_cd_time_ms(&TITAN_V, GpuVariant::Basic, &w, Q);
        let tx2 = gpu_cd_time_ms(&JETSON_TX2, GpuVariant::Basic, &w, Q);
        // Table 3: 24 ms vs 5833 ms (≈240×); our model separates them by
        // the SM/clock ratio (≈56×) at minimum.
        assert!(tx2 / titan > 30.0, "ratio {}", tx2 / titan);
    }

    #[test]
    fn optimizations_help_about_2x() {
        // Table 3: Titan V 24 -> 12 ms with the GPU optimizations.
        let w = workload();
        let basic = gpu_cd_time_ms(&TITAN_V, GpuVariant::Basic, &w, Q);
        let opt = gpu_cd_time_ms(&TITAN_V, GpuVariant::Optimized, &w, Q);
        let ratio = basic / opt;
        assert!((1.3..=3.5).contains(&ratio), "speedup {ratio}");
    }

    #[test]
    fn leaf_kernel_helps_gpu_hurts_cpu() {
        // Table 3's crossover: leaf-nodes is the fastest Titan V variant
        // but the slowest CPU variant.
        let w = workload();
        let titan_opt = gpu_cd_time_ms(&TITAN_V, GpuVariant::Optimized, &w, Q);
        let titan_leaf = gpu_cd_time_ms(&TITAN_V, GpuVariant::LeafNodes, &w, Q);
        assert!(titan_leaf < titan_opt);
        let i7_trav = cpu_cd_time_ms(&I7_4771, CpuVariant::Traversal, &w, Q);
        let i7_leaf = cpu_cd_time_ms(&I7_4771, CpuVariant::LeafNodes, &w, Q);
        assert!(i7_leaf > i7_trav);
    }

    #[test]
    fn table3_platform_ordering_basic_kernel() {
        // Table 3 basic-kernel order: TitanV < i7 < A57 < TX2.
        let w = workload();
        let titan = gpu_cd_time_ms(&TITAN_V, GpuVariant::Basic, &w, Q);
        let i7 = cpu_cd_time_ms(&I7_4771, CpuVariant::Traversal, &w, Q);
        let a57 = cpu_cd_time_ms(&CORTEX_A57, CpuVariant::Traversal, &w, Q);
        let tx2 = gpu_cd_time_ms(&JETSON_TX2, GpuVariant::Basic, &w, Q);
        assert!(titan < i7, "titan {titan} i7 {i7}");
        assert!(i7 < a57, "i7 {i7} a57 {a57}");
        assert!(a57 < tx2, "a57 {a57} tx2 {tx2}");
    }

    #[test]
    fn titan_ballpark() {
        // Table 3: 24 ms for 2^20 basic queries; accept a ~4x band.
        let w = workload();
        let titan = gpu_cd_time_ms(&TITAN_V, GpuVariant::Basic, &w, Q);
        assert!((6.0..=100.0).contains(&titan), "titan {titan} ms");
    }
}
