//! Analytic CPU/GPU execution models — the comparison baselines of §7.5
//! (Table 3).
//!
//! The paper measures OBB–octree collision detection and end-to-end motion
//! planning on four platforms (NVIDIA Titan V, Jetson TX2, Intel i7-4771,
//! ARM Cortex-A57). We cannot measure that hardware here, so this crate
//! provides *first-order calibrated cost models* (DESIGN.md substitution
//! 3): the per-query work (octree nodes visited, intersection tests,
//! traversal divergence) is measured exactly by running the real workload
//! through the real octree, and per-platform constants (issue rates, memory
//! latencies, core/SM counts) convert work into time. The constants are
//! calibrated so the *ratios* between platforms track Table 3.
//!
//! Three GPU kernel variants are modelled, matching §7.5:
//! * plain per-thread OBB–octree traversal,
//! * `+ GPU optimizations` (locality-grouped warps + interleaved per-warp
//!   queues, reducing warp and memory divergence),
//! * the leaf-node-parallel kernel (one thread per octree leaf).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpu;
pub mod gpu;
pub mod workload;

pub use cpu::{cpu_cd_time_ms, CpuModel};
pub use gpu::{gpu_cd_time_ms, GpuModel, GpuVariant};
pub use workload::{measure_workload, WorkloadStats};

/// End-to-end motion-planning runtime estimate for a baseline platform
/// (the "Average motion planning runtime" row of Table 3).
///
/// `cd_ms_per_query` is the platform's OBB–octree query time; the planner
/// workload supplies how many such queries one motion-planning query
/// executes, plus the NN inference time on the platform's most capable
/// device.
pub fn motion_planning_time_ms(
    cd_ms_per_obb_query: f64,
    obb_queries_per_plan: f64,
    nn_ms_per_plan: f64,
    overhead_ms: f64,
) -> f64 {
    cd_ms_per_obb_query * obb_queries_per_plan + nn_ms_per_plan + overhead_ms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mp_time_compose() {
        let t = motion_planning_time_ms(0.001, 1000.0, 0.2, 0.1);
        assert!((t - 1.3).abs() < 1e-9);
    }
}
