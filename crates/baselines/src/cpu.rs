//! CPU execution models (Intel i7-4771, ARM Cortex-A57).

use crate::workload::WorkloadStats;

/// A CPU platform's cost model.
///
/// Per-query time is work (octree nodes fetched, OBB–AABB tests) priced at
/// per-operation latencies, divided by the core count (the kernel is
/// embarrassingly parallel across queries). Constants are calibrated so the
/// cross-platform ratios track Table 3.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpuModel {
    /// Platform name as it appears in Table 3.
    pub name: &'static str,
    /// Cores used by the parallel kernel.
    pub cores: u32,
    /// Nanoseconds to fetch + decode one octree node (cache-resident).
    pub node_ns: f64,
    /// Nanoseconds for one full early-exit OBB–AABB intersection test.
    pub test_ns: f64,
    /// Nanoseconds for the simpler leaf-AABB test of the leaf-node kernel.
    pub leaf_test_ns: f64,
    /// Package power in watts (Table 3).
    pub power_w: f64,
}

/// Intel i7-4771 (8 threads), ~65 W.
pub const I7_4771: CpuModel = CpuModel {
    name: "i7-4771 (8-core)",
    cores: 8,
    node_ns: 80.0,
    test_ns: 120.0,
    leaf_test_ns: 55.0,
    power_w: 65.0,
};

/// ARM Cortex-A57 (4 cores), ~4.2 W.
pub const CORTEX_A57: CpuModel = CpuModel {
    name: "Cortex-A57 (4-core)",
    cores: 4,
    node_ns: 100.0,
    test_ns: 140.0,
    leaf_test_ns: 65.0,
    power_w: 4.2,
};

/// CPU kernel variants of Table 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CpuVariant {
    /// Per-query early-exit octree traversal.
    Traversal,
    /// One test per occupied leaf per query (the "OBB-octree leaf nodes"
    /// row — much worse on CPUs, as the paper reports).
    LeafNodes,
}

/// Wall-clock milliseconds to run `queries` OBB–octree queries.
///
/// # Panics
///
/// Panics if the model has zero cores.
pub fn cpu_cd_time_ms(
    model: &CpuModel,
    variant: CpuVariant,
    workload: &WorkloadStats,
    queries: u64,
) -> f64 {
    assert!(model.cores > 0, "CPU model needs cores");
    let per_query_ns = match variant {
        CpuVariant::Traversal => {
            workload.avg_nodes * model.node_ns + workload.avg_tests * model.test_ns
        }
        CpuVariant::LeafNodes => workload.leaf_count * model.leaf_test_ns,
    };
    per_query_ns * queries as f64 / model.cores as f64 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::measure_workload;
    use mp_octree::{Scene, SceneConfig};

    fn workload() -> WorkloadStats {
        measure_workload(&Scene::random(SceneConfig::paper(), 0).octree(), 1024, 7)
    }

    const Q: u64 = 1 << 20;

    #[test]
    fn i7_is_faster_than_a57() {
        let w = workload();
        let i7 = cpu_cd_time_ms(&I7_4771, CpuVariant::Traversal, &w, Q);
        let a57 = cpu_cd_time_ms(&CORTEX_A57, CpuVariant::Traversal, &w, Q);
        assert!(i7 < a57);
        // Table 3 ratio ≈ 2.35×; allow a broad band.
        let ratio = a57 / i7;
        assert!((1.5..=4.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn leaf_kernel_is_much_worse_on_cpu() {
        // Table 3: i7 goes 153 ms -> 890 ms with the leaf-node kernel.
        let w = workload();
        let trav = cpu_cd_time_ms(&I7_4771, CpuVariant::Traversal, &w, Q);
        let leaf = cpu_cd_time_ms(&I7_4771, CpuVariant::LeafNodes, &w, Q);
        assert!(leaf > 2.0 * trav, "leaf {leaf} vs traversal {trav}");
    }

    #[test]
    fn table3_order_of_magnitude() {
        // The i7 traversal number should land in the Table 3 ballpark
        // (153 ms for 2^20 queries) — within ~3x given our synthetic
        // workload differs from the authors'.
        let w = workload();
        let i7 = cpu_cd_time_ms(&I7_4771, CpuVariant::Traversal, &w, Q);
        assert!((40.0..=460.0).contains(&i7), "i7 {i7} ms");
    }

    #[test]
    fn scales_linearly_in_queries() {
        let w = workload();
        let t1 = cpu_cd_time_ms(&I7_4771, CpuVariant::Traversal, &w, 1000);
        let t2 = cpu_cd_time_ms(&I7_4771, CpuVariant::Traversal, &w, 2000);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }
}
