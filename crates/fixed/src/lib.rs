//! 16-bit fixed-point arithmetic for the MPAccel hardware datapath models.
//!
//! The MPAccel paper (§6) uses a 16-bit fixed-point number representation for
//! poses, oriented bounding boxes (OBBs) and axis-aligned bounding boxes
//! (AABBs). This crate provides that representation as [`Fx`], a Q3.12
//! signed fixed-point type: 1 sign bit, 3 integer bits, 12 fractional bits,
//! covering the range `[-8, 8)` with a resolution of `2^-12 ≈ 0.000244`.
//!
//! All geometry in the reproduction is expressed in *normalized workspace
//! units*: the environment extent is mapped to `[-1, 1]`, so Q3.12 leaves
//! three integer bits of headroom for intermediate sums (e.g. projections of
//! box extents in the separating-axis test).
//!
//! Multiplications round to nearest and saturate, matching a hardware
//! multiplier followed by a saturating truncation stage. Additions saturate
//! as well: the RTL described in the paper sizes its adders so that overflow
//! clamps rather than wraps.
//!
//! # Examples
//!
//! ```
//! use mp_fixed::Fx;
//!
//! let a = Fx::from_f32(0.5);
//! let b = Fx::from_f32(0.25);
//! assert_eq!((a * b).to_f32(), 0.125);
//! assert!((a + b).to_f32() > 0.74 && (a + b).to_f32() < 0.76);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::cmp::Ordering;
use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// Number of fractional bits in [`Fx`] (Q3.12).
pub const FRAC_BITS: u32 = 12;

/// The scale factor `2^FRAC_BITS` relating raw integer values to reals.
pub const SCALE: i32 = 1 << FRAC_BITS;

/// Smallest positive increment representable by [`Fx`] (`2^-12`).
pub const RESOLUTION: f32 = 1.0 / SCALE as f32;

/// A signed Q3.12 fixed-point number stored in 16 bits.
///
/// See the [crate-level documentation](crate) for the rationale. `Fx`
/// implements the usual arithmetic operators with *saturating* semantics;
/// overflow never wraps or panics.
///
/// # Examples
///
/// ```
/// use mp_fixed::Fx;
///
/// let x = Fx::from_f32(1.5);
/// assert_eq!((-x).to_f32(), -1.5);
/// assert_eq!(x.abs(), x);
/// assert_eq!(Fx::MAX + Fx::MAX, Fx::MAX); // saturates
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct Fx(i16);

impl Fx {
    /// Zero.
    pub const ZERO: Fx = Fx(0);
    /// One.
    pub const ONE: Fx = Fx(SCALE as i16);
    /// Negative one.
    pub const NEG_ONE: Fx = Fx(-(SCALE as i16));
    /// One half.
    pub const HALF: Fx = Fx((SCALE / 2) as i16);
    /// Largest representable value (`8 - 2^-12`).
    pub const MAX: Fx = Fx(i16::MAX);
    /// Smallest representable value (`-8`).
    pub const MIN: Fx = Fx(i16::MIN);
    /// Smallest positive value (`2^-12`).
    pub const EPSILON: Fx = Fx(1);

    /// Creates an `Fx` from its raw 16-bit two's-complement representation.
    ///
    /// # Examples
    ///
    /// ```
    /// use mp_fixed::Fx;
    /// assert_eq!(Fx::from_bits(1 << 12), Fx::ONE);
    /// ```
    #[inline]
    pub const fn from_bits(bits: i16) -> Fx {
        Fx(bits)
    }

    /// Returns the raw 16-bit two's-complement representation.
    ///
    /// # Examples
    ///
    /// ```
    /// use mp_fixed::Fx;
    /// assert_eq!(Fx::ONE.to_bits(), 1 << 12);
    /// ```
    #[inline]
    pub const fn to_bits(self) -> i16 {
        self.0
    }

    /// Converts from `f32`, rounding to nearest and saturating to the
    /// representable range.
    ///
    /// Non-finite inputs saturate: `NaN` maps to zero, `+inf` to [`Fx::MAX`],
    /// `-inf` to [`Fx::MIN`].
    ///
    /// # Examples
    ///
    /// ```
    /// use mp_fixed::Fx;
    /// assert_eq!(Fx::from_f32(100.0), Fx::MAX);
    /// assert_eq!(Fx::from_f32(f32::NAN), Fx::ZERO);
    /// ```
    #[inline]
    pub fn from_f32(v: f32) -> Fx {
        if v.is_nan() {
            return Fx::ZERO;
        }
        let scaled = (v * SCALE as f32).round();
        if scaled >= i16::MAX as f32 {
            Fx::MAX
        } else if scaled <= i16::MIN as f32 {
            Fx::MIN
        } else {
            Fx(scaled as i16)
        }
    }

    /// Converts to `f32` exactly (every `Fx` is exactly representable).
    #[inline]
    pub fn to_f32(self) -> f32 {
        self.0 as f32 * RESOLUTION
    }

    /// Converts from `f64`, rounding to nearest and saturating.
    #[inline]
    pub fn from_f64(v: f64) -> Fx {
        Fx::from_f32(v as f32)
    }

    /// Converts to `f64` exactly.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / SCALE as f64
    }

    /// Absolute value, saturating (`|Fx::MIN|` clamps to [`Fx::MAX`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use mp_fixed::Fx;
    /// assert_eq!(Fx::MIN.abs(), Fx::MAX);
    /// assert_eq!(Fx::from_f32(-0.5).abs().to_f32(), 0.5);
    /// ```
    #[inline]
    pub const fn abs(self) -> Fx {
        if self.0 == i16::MIN {
            Fx::MAX
        } else if self.0 < 0 {
            Fx(-self.0)
        } else {
            self
        }
    }

    /// Returns `true` if this value is negative.
    #[inline]
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Returns the smaller of `self` and `other`.
    #[inline]
    pub fn min(self, other: Fx) -> Fx {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of `self` and `other`.
    #[inline]
    pub fn max(self, other: Fx) -> Fx {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Clamps `self` into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn clamp(self, lo: Fx, hi: Fx) -> Fx {
        assert!(lo <= hi, "Fx::clamp called with lo > hi");
        self.max(lo).min(hi)
    }

    /// Saturating addition (the behaviour of the `+` operator, made explicit).
    #[inline]
    pub const fn saturating_add(self, rhs: Fx) -> Fx {
        Fx(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub const fn saturating_sub(self, rhs: Fx) -> Fx {
        Fx(self.0.saturating_sub(rhs.0))
    }

    /// Saturating multiplication with round-to-nearest, mirroring the
    /// hardware multiplier + truncation stage.
    #[inline]
    pub const fn saturating_mul(self, rhs: Fx) -> Fx {
        let wide = self.0 as i32 * rhs.0 as i32;
        // Round to nearest: add half an LSB before shifting.
        let rounded = (wide + (1 << (FRAC_BITS - 1))) >> FRAC_BITS;
        if rounded > i16::MAX as i32 {
            Fx::MAX
        } else if rounded < i16::MIN as i32 {
            Fx::MIN
        } else {
            Fx(rounded as i16)
        }
    }

    /// The square of `self`, saturating. Never negative.
    #[inline]
    pub const fn square(self) -> Fx {
        self.saturating_mul(self)
    }

    /// Wide multiply: the exact 32-bit Q6.24 product, for accumulator-style
    /// datapaths that postpone truncation (used by squared-distance sums in
    /// the sphere tests, where the RTL keeps a wide accumulator).
    #[inline]
    pub const fn wide_mul(self, rhs: Fx) -> i32 {
        self.0 as i32 * rhs.0 as i32
    }

    /// Checked division (software helper, not part of the hardware datapath;
    /// the accelerator never divides). Returns `None` when `rhs` is zero.
    #[inline]
    pub fn checked_div(self, rhs: Fx) -> Option<Fx> {
        if rhs.0 == 0 {
            return None;
        }
        let wide = ((self.0 as i32) << FRAC_BITS) / rhs.0 as i32;
        Some(if wide > i16::MAX as i32 {
            Fx::MAX
        } else if wide < i16::MIN as i32 {
            Fx::MIN
        } else {
            Fx(wide as i16)
        })
    }
}

impl Add for Fx {
    type Output = Fx;
    #[inline]
    fn add(self, rhs: Fx) -> Fx {
        self.saturating_add(rhs)
    }
}

impl AddAssign for Fx {
    #[inline]
    fn add_assign(&mut self, rhs: Fx) {
        *self = *self + rhs;
    }
}

impl Sub for Fx {
    type Output = Fx;
    #[inline]
    fn sub(self, rhs: Fx) -> Fx {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for Fx {
    #[inline]
    fn sub_assign(&mut self, rhs: Fx) {
        *self = *self - rhs;
    }
}

impl Mul for Fx {
    type Output = Fx;
    #[inline]
    fn mul(self, rhs: Fx) -> Fx {
        self.saturating_mul(rhs)
    }
}

impl MulAssign for Fx {
    #[inline]
    fn mul_assign(&mut self, rhs: Fx) {
        *self = *self * rhs;
    }
}

impl Div for Fx {
    type Output = Fx;
    /// Saturating division.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[inline]
    fn div(self, rhs: Fx) -> Fx {
        self.checked_div(rhs).expect("division by zero Fx")
    }
}

impl Neg for Fx {
    type Output = Fx;
    #[inline]
    fn neg(self) -> Fx {
        Fx(self.0.checked_neg().unwrap_or(i16::MAX))
    }
}

impl Sum for Fx {
    fn sum<I: Iterator<Item = Fx>>(iter: I) -> Fx {
        iter.fold(Fx::ZERO, Fx::add)
    }
}

impl fmt::Debug for Fx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fx({})", self.to_f32())
    }
}

impl fmt::Display for Fx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl From<i8> for Fx {
    /// Converts a small integer, saturating outside `[-8, 7]`.
    #[inline]
    fn from(v: i8) -> Fx {
        let wide = (v as i32) << FRAC_BITS;
        if wide > i16::MAX as i32 {
            Fx::MAX
        } else if wide < i16::MIN as i32 {
            Fx::MIN
        } else {
            Fx(wide as i16)
        }
    }
}

/// A 64-bit accumulator for sums of Q6.24 [`Fx`] products.
///
/// The OOCD sphere tests accumulate three squared distances before a single
/// comparison; the RTL keeps that sum in a wide register. `Acc` models that:
/// products enter via [`Fx::wide_mul`] and comparisons happen at full width.
///
/// # Examples
///
/// ```
/// use mp_fixed::{Acc, Fx};
///
/// let mut acc = Acc::ZERO;
/// acc += Fx::from_f32(0.5).wide_mul(Fx::from_f32(0.5));
/// acc += Fx::from_f32(0.25).wide_mul(Fx::from_f32(0.25));
/// assert!(acc.to_f64() > 0.31 && acc.to_f64() < 0.32);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Acc(i64);

impl Acc {
    /// Zero.
    pub const ZERO: Acc = Acc(0);

    /// Creates an accumulator holding a single wide product.
    #[inline]
    pub const fn from_product(p: i32) -> Acc {
        Acc(p as i64)
    }

    /// Converts to `f64` (exact).
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / (SCALE as f64 * SCALE as f64)
    }

    /// Raw Q6.24 (widened to i64) value.
    #[inline]
    pub const fn raw(self) -> i64 {
        self.0
    }
}

impl Add for Acc {
    type Output = Acc;
    #[inline]
    fn add(self, rhs: Acc) -> Acc {
        Acc(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<i32> for Acc {
    #[inline]
    fn add_assign(&mut self, product: i32) {
        self.0 = self.0.saturating_add(product as i64);
    }
}

impl AddAssign for Acc {
    #[inline]
    fn add_assign(&mut self, rhs: Acc) {
        *self = *self + rhs;
    }
}

impl PartialOrd<Acc> for Fx {
    fn partial_cmp(&self, other: &Acc) -> Option<Ordering> {
        let lhs = (self.0 as i64) << FRAC_BITS; // promote Q3.12 -> Q6.24
        lhs.partial_cmp(&other.0)
    }
}

impl PartialEq<Acc> for Fx {
    fn eq(&self, other: &Acc) -> bool {
        ((self.0 as i64) << FRAC_BITS) == other.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(Fx::ONE.to_f32(), 1.0);
        assert_eq!(Fx::NEG_ONE.to_f32(), -1.0);
        assert_eq!(Fx::HALF.to_f32(), 0.5);
        assert_eq!(Fx::ZERO.to_f32(), 0.0);
        assert_eq!(Fx::EPSILON.to_f32(), RESOLUTION);
    }

    #[test]
    fn roundtrip_is_exact_on_grid() {
        for bits in [-32768i32, -1234, -1, 0, 1, 999, 32767] {
            let x = Fx::from_bits(bits as i16);
            assert_eq!(Fx::from_f32(x.to_f32()), x);
        }
    }

    #[test]
    fn from_f32_rounds_to_nearest() {
        // 0.6 * 4096 = 2457.6 -> 2458
        assert_eq!(Fx::from_f32(0.6).to_bits(), 2458);
        assert_eq!(Fx::from_f32(-0.6).to_bits(), -2458);
    }

    #[test]
    fn from_f32_saturates() {
        assert_eq!(Fx::from_f32(1e9), Fx::MAX);
        assert_eq!(Fx::from_f32(-1e9), Fx::MIN);
        assert_eq!(Fx::from_f32(f32::INFINITY), Fx::MAX);
        assert_eq!(Fx::from_f32(f32::NEG_INFINITY), Fx::MIN);
        assert_eq!(Fx::from_f32(f32::NAN), Fx::ZERO);
    }

    #[test]
    fn add_saturates_not_wraps() {
        assert_eq!(Fx::MAX + Fx::EPSILON, Fx::MAX);
        assert_eq!(Fx::MIN - Fx::EPSILON, Fx::MIN);
        assert_eq!(Fx::MAX + Fx::MIN, Fx::from_bits(-1));
    }

    #[test]
    fn mul_basics() {
        let half = Fx::HALF;
        assert_eq!(half * half, Fx::from_f32(0.25));
        assert_eq!(Fx::ONE * Fx::ONE, Fx::ONE);
        assert_eq!(Fx::NEG_ONE * Fx::NEG_ONE, Fx::ONE);
        assert_eq!(Fx::ZERO * Fx::MAX, Fx::ZERO);
    }

    #[test]
    fn mul_saturates() {
        let four = Fx::from_f32(4.0);
        assert_eq!(four * four, Fx::MAX); // 16 > 8
        assert_eq!(four * (-four), Fx::MIN);
    }

    #[test]
    fn mul_rounds_to_nearest() {
        // (1 LSB) * (1/2) = half an LSB -> rounds up to 1 LSB.
        assert_eq!(Fx::EPSILON * Fx::HALF, Fx::EPSILON);
        // (1 LSB) * (1/4) = quarter LSB -> rounds down to 0.
        assert_eq!(Fx::EPSILON * Fx::from_f32(0.25), Fx::ZERO);
    }

    #[test]
    fn neg_and_abs() {
        assert_eq!(-Fx::ONE, Fx::NEG_ONE);
        assert_eq!(Fx::MIN.abs(), Fx::MAX);
        assert_eq!(-Fx::MIN, Fx::MAX); // checked_neg saturates
        assert_eq!(Fx::from_f32(-2.5).abs().to_f32(), 2.5);
    }

    #[test]
    fn division() {
        assert_eq!(Fx::ONE / Fx::HALF, Fx::from_f32(2.0));
        assert_eq!(Fx::from_f32(6.0) / Fx::from_f32(2.0), Fx::from_f32(3.0));
        assert_eq!(Fx::ONE.checked_div(Fx::ZERO), None);
        // Saturating: 7 / (1 LSB) would overflow.
        assert_eq!(Fx::from_f32(7.0) / Fx::EPSILON, Fx::MAX);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = Fx::ONE / Fx::ZERO;
    }

    #[test]
    fn ordering_and_minmax() {
        let a = Fx::from_f32(-1.0);
        let b = Fx::from_f32(2.0);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(b.clamp(Fx::ZERO, Fx::ONE), Fx::ONE);
        assert_eq!(a.clamp(Fx::ZERO, Fx::ONE), Fx::ZERO);
    }

    #[test]
    #[should_panic(expected = "lo > hi")]
    fn clamp_panics_on_inverted_range() {
        let _ = Fx::ZERO.clamp(Fx::ONE, Fx::ZERO);
    }

    #[test]
    fn sum_iterator() {
        let xs = [Fx::HALF, Fx::HALF, Fx::ONE];
        let total: Fx = xs.iter().copied().sum();
        assert_eq!(total, Fx::from_f32(2.0));
    }

    #[test]
    fn accumulator_compare_against_fx() {
        let mut acc = Acc::ZERO;
        acc += Fx::HALF.wide_mul(Fx::HALF); // 0.25
        acc += Fx::HALF.wide_mul(Fx::HALF); // 0.5 total
        assert!(Fx::HALF == acc);
        assert!(Fx::ONE > acc);
        assert!(Fx::from_f32(0.4) < acc);
    }

    #[test]
    fn wide_mul_is_exact() {
        let a = Fx::from_f32(1.5);
        let b = Fx::from_f32(-2.0);
        let acc = Acc::from_product(a.wide_mul(b));
        assert_eq!(acc.to_f64(), -3.0);
    }

    #[test]
    fn from_i8_saturates_outside_range() {
        assert_eq!(Fx::from(2i8).to_f32(), 2.0);
        assert_eq!(Fx::from(-8i8), Fx::MIN);
        assert_eq!(Fx::from(100i8), Fx::MAX);
        assert_eq!(Fx::from(-100i8), Fx::MIN);
    }

    #[test]
    fn debug_display_nonempty() {
        assert_eq!(format!("{:?}", Fx::ONE), "Fx(1)");
        assert_eq!(format!("{}", Fx::HALF), "0.5");
    }
}
