//! Edge-of-range behavior of the Q3.12 type: every operation at the
//! `i16::MIN`/`i16::MAX` boundary must *saturate* — never wrap, never
//! panic — because the hardware datapath it models clamps at the rails.

use mp_fixed::{Fx, RESOLUTION};

#[test]
fn addition_saturates_at_both_rails() {
    assert_eq!(Fx::MAX + Fx::MAX, Fx::MAX);
    assert_eq!(Fx::MAX + Fx::EPSILON, Fx::MAX);
    assert_eq!(Fx::MIN + Fx::MIN, Fx::MIN);
    assert_eq!(Fx::MIN - Fx::EPSILON, Fx::MIN);
    assert_eq!(Fx::MIN - Fx::MAX, Fx::MIN);
    assert_eq!(Fx::MAX - Fx::MIN, Fx::MAX);
    // Saturation is one-sided: stepping back off the rail works.
    assert_eq!((Fx::MAX - Fx::EPSILON) + Fx::EPSILON, Fx::MAX);
    assert_eq!(Fx::MAX + Fx::MIN, Fx::from_bits(-1));
}

#[test]
fn multiplication_saturates_at_both_rails() {
    // |MIN * MIN| ≈ 64 is far above the +8 rail.
    assert_eq!(Fx::MIN * Fx::MIN, Fx::MAX);
    assert_eq!(Fx::MAX * Fx::MAX, Fx::MAX);
    assert_eq!(Fx::MIN * Fx::MAX, Fx::MIN);
    assert_eq!(Fx::MAX * Fx::MIN, Fx::MIN);
    assert_eq!(Fx::MIN.square(), Fx::MAX, "square is never negative");
    // Multiplying by one leaves the rails in place.
    assert_eq!(Fx::MAX * Fx::ONE, Fx::MAX);
    assert_eq!(Fx::MIN * Fx::ONE, Fx::MIN);
}

#[test]
fn negation_of_min_clamps_instead_of_wrapping() {
    // Two's complement has no +32768: -MIN must clamp to MAX, not wrap
    // back to MIN (i16::wrapping_neg would).
    assert_eq!(-Fx::MIN, Fx::MAX);
    assert_eq!(Fx::MIN.abs(), Fx::MAX);
    assert_eq!(-Fx::MAX, Fx::from_bits(-i16::MAX));
    assert_eq!(-(-Fx::MAX), Fx::MAX);
}

#[test]
fn round_trip_just_outside_the_range_saturates() {
    // MAX represents 32767/4096 ≈ 7.99976; one LSB above it is out of
    // range and must clamp to MAX on conversion.
    let max_f = Fx::MAX.to_f32();
    assert_eq!(Fx::from_f32(max_f + RESOLUTION), Fx::MAX);
    assert_eq!(Fx::from_f32(8.0), Fx::MAX);
    assert_eq!(Fx::from_f32(7.9999), Fx::MAX);
    // MIN represents exactly -8; anything below clamps to MIN.
    let min_f = Fx::MIN.to_f32();
    assert_eq!(min_f, -8.0);
    assert_eq!(Fx::from_f32(min_f - RESOLUTION), Fx::MIN);
    assert_eq!(Fx::from_f32(-8.0002), Fx::MIN);
    // And the clamped values round-trip exactly thereafter.
    assert_eq!(Fx::from_f32(Fx::MAX.to_f32()), Fx::MAX);
    assert_eq!(Fx::from_f32(Fx::MIN.to_f32()), Fx::MIN);
    // f64 conversions saturate identically.
    assert_eq!(Fx::from_f64(1e9), Fx::MAX);
    assert_eq!(Fx::from_f64(-1e9), Fx::MIN);
}

#[test]
fn rounding_near_the_rail_does_not_overflow() {
    // from_f32 rounds to nearest; a value that rounds *to* the rail must
    // land on it, not overflow past it.
    assert_eq!(Fx::from_f32(Fx::MAX.to_f32() + 0.4 * RESOLUTION), Fx::MAX);
    assert_eq!(Fx::from_f32(Fx::MIN.to_f32() - 0.4 * RESOLUTION), Fx::MIN);
}

#[test]
fn integer_conversion_saturates_outside_the_q3_range() {
    assert_eq!(Fx::from(7i8).to_f32(), 7.0);
    assert_eq!(Fx::from(-8i8).to_f32(), -8.0);
    // +8 is not representable (MAX is one LSB short of it).
    assert_eq!(Fx::from(8i8), Fx::MAX);
    assert_eq!(Fx::from(127i8), Fx::MAX);
    assert_eq!(Fx::from(-9i8), Fx::MIN);
    assert_eq!(Fx::from(-128i8), Fx::MIN);
}

#[test]
fn saturating_helpers_agree_with_operators_at_the_rails() {
    assert_eq!(Fx::MAX.saturating_add(Fx::MAX), Fx::MAX + Fx::MAX);
    assert_eq!(Fx::MIN.saturating_sub(Fx::MAX), Fx::MIN - Fx::MAX);
    assert_eq!(Fx::MIN.saturating_mul(Fx::MIN), Fx::MIN * Fx::MIN);
}
