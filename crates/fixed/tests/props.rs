//! Property-based tests for the Q3.12 fixed-point type.

use mp_fixed::{Acc, Fx, RESOLUTION};
use proptest::prelude::*;

fn any_fx() -> impl Strategy<Value = Fx> {
    any::<i16>().prop_map(Fx::from_bits)
}

proptest! {
    #[test]
    fn roundtrip_bits(bits in any::<i16>()) {
        prop_assert_eq!(Fx::from_bits(bits).to_bits(), bits);
    }

    #[test]
    fn roundtrip_f32_on_grid(x in any_fx()) {
        prop_assert_eq!(Fx::from_f32(x.to_f32()), x);
    }

    #[test]
    fn add_commutes(a in any_fx(), b in any_fx()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn mul_commutes(a in any_fx(), b in any_fx()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn add_matches_f64_when_in_range(a in any_fx(), b in any_fx()) {
        let exact = a.to_f64() + b.to_f64();
        if exact < Fx::MAX.to_f64() && exact > Fx::MIN.to_f64() {
            prop_assert!((a + b).to_f64() == exact);
        }
    }

    #[test]
    fn mul_error_within_half_lsb(a in any_fx(), b in any_fx()) {
        let exact = a.to_f64() * b.to_f64();
        if exact < Fx::MAX.to_f64() && exact > Fx::MIN.to_f64() {
            let got = (a * b).to_f64();
            prop_assert!((got - exact).abs() <= 0.5 * RESOLUTION as f64 + 1e-12,
                "a={a:?} b={b:?} got={got} exact={exact}");
        }
    }

    #[test]
    fn abs_is_nonnegative(a in any_fx()) {
        prop_assert!(!a.abs().is_negative());
    }

    #[test]
    fn neg_is_involutive_away_from_min(a in any_fx()) {
        prop_assume!(a != Fx::MIN);
        prop_assert_eq!(-(-a), a);
    }

    #[test]
    fn ordering_matches_f32(a in any_fx(), b in any_fx()) {
        prop_assert_eq!(a < b, a.to_f32() < b.to_f32());
    }

    #[test]
    fn wide_mul_never_truncates(a in any_fx(), b in any_fx()) {
        let acc = Acc::from_product(a.wide_mul(b));
        let exact = a.to_f64() * b.to_f64();
        prop_assert!((acc.to_f64() - exact).abs() < 1e-12);
    }

    #[test]
    fn fx_acc_comparison_consistent(a in any_fx(), b in any_fx(), c in any_fx()) {
        // Compare a against b*c at full precision.
        let acc = Acc::from_product(b.wide_mul(c));
        let exact = b.to_f64() * c.to_f64();
        prop_assert_eq!(a > acc, a.to_f64() > exact);
    }

    #[test]
    fn clamp_is_idempotent(a in any_fx(), lo in any_fx(), hi in any_fx()) {
        prop_assume!(lo <= hi);
        let once = a.clamp(lo, hi);
        prop_assert_eq!(once.clamp(lo, hi), once);
        prop_assert!(once >= lo && once <= hi);
    }
}
