//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository is hermetic (no crates.io
//! access), so the workspace patches `rand` with this zero-dependency
//! implementation of the API subset it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`] over
//! float/integer ranges, and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `rand`'s ChaCha12-based `StdRng`, but with the same
//! determinism contract: identical seeds produce identical sequences on
//! every platform and run.

#![forbid(unsafe_code)]

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion, the
    /// same scheme upstream `rand` documents for `seed_from_u64`).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

/// Types samplable from the uniform "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        // 24 high bits -> [0, 1) with full float resolution.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for i16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i16 {
        rng.next_u32() as i16
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_float_range {
    ($t:ty, $standard:ty) => {
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    };
}
impl_float_range!(f32, f32);
impl_float_range!(f64, f64);

macro_rules! impl_int_range {
    ($t:ty) => {
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    };
}
impl_int_range!(u8);
impl_int_range!(u16);
impl_int_range!(u32);
impl_int_range!(u64);
impl_int_range!(usize);
impl_int_range!(i8);
impl_int_range!(i16);
impl_int_range!(i32);
impl_int_range!(i64);
impl_int_range!(isize);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence helpers.
pub mod seq {
    use super::RngCore;

    /// Random slice operations.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// A uniformly chosen element, or `None` if empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_by_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f32>(), b.gen::<f32>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(
            (0..8).map(|_| a.gen::<u64>()).collect::<Vec<_>>(),
            (0..8).map(|_| c.gen::<u64>()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f = rng.gen_range(-0.25f32..0.75);
            assert!((-0.25..0.75).contains(&f));
            let g = rng.gen_range(2usize..=9);
            assert!((2..=9).contains(&g));
            let h = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&h));
            let u = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_samples_cover_spread() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..256 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "8-way range left a bucket empty");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "32 elements should not shuffle to identity");
    }
}
