//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment for this repository is hermetic (no crates.io
//! access), so the workspace patches `criterion` with this zero-dependency
//! subset: [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. It runs each benchmark for a fixed number of timed samples and
//! prints mean per-iteration wall time — no statistics, plots, or HTML
//! reports.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark in the group collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` and prints the mean per-iteration duration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        let mean_ns = if bencher.iters == 0 {
            0.0
        } else {
            bencher.total.as_nanos() as f64 / bencher.iters as f64
        };
        println!("  {id}: {mean_ns:.1} ns/iter ({} iters)", bencher.iters);
        self
    }

    /// Ends the group (upstream flushes reports here; the stub is a no-op).
    pub fn finish(self) {}
}

/// Handed to each benchmark closure to drive the timed routine.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `routine` once untimed (warm-up), then `samples` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a single named runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a benchmark binary from [`criterion_group!`] outputs.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_demo(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }

    criterion_group!(demo_benches, bench_demo);

    #[test]
    fn group_runs_benchmarks() {
        demo_benches();
    }
}
