//! Offline stand-in for the `proptest` crate.
//!
//! The build environment for this repository is hermetic (no crates.io
//! access), so the workspace patches `proptest` with this zero-dependency
//! implementation of the API subset its property tests actually use:
//! the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_assume!`] / [`prop_oneof!`] macros, the [`strategy::Strategy`]
//! trait with `prop_map`, range / tuple / [`strategy::Just`] strategies,
//! [`arbitrary::any`], [`collection::vec`], and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from upstream: inputs are drawn from a fixed-seed
//! deterministic generator (no OS entropy, so every run explores the same
//! cases — a feature for reproducible CI), there is no shrinking (a failure
//! reports the case index and message only), and `proptest-regressions`
//! files are ignored.

#![forbid(unsafe_code)]

/// Deterministic pseudo-random source used to generate test cases
/// (xoshiro256++ seeded through SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds the generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> TestRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot draw below 0");
        self.next_u64() % n
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use super::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Discards generated values for which `f` is false (the runner
        /// treats them as rejected cases and draws again).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                source: self,
                whence,
                f,
            }
        }

        /// Type-erases this strategy (used by [`prop_oneof!`](crate::prop_oneof)).
        fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_filter`]. Draws until the predicate
    /// accepts, up to a bounded number of attempts.
    #[derive(Clone, Debug)]
    pub struct Filter<S, F> {
        pub(crate) source: S,
        pub(crate) whence: &'static str,
        pub(crate) f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1024 {
                let v = self.source.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1024 draws in a row: {}", self.whence);
        }
    }

    /// Uniform choice between type-erased strategies
    /// (what [`prop_oneof!`](crate::prop_oneof) builds).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `options` must be non-empty.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_float_range_strategy {
        ($t:ty) => {
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    lo + (hi - lo) * rng.unit_f64() as $t
                }
            }
        };
    }
    impl_float_range_strategy!(f32);
    impl_float_range_strategy!(f64);

    macro_rules! impl_int_range_strategy {
        ($t:ty) => {
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = ((rng.next_u64() as u128) % span) as i128;
                    (self.start as i128 + v) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let v = ((rng.next_u64() as u128) % span) as i128;
                    (lo as i128 + v) as $t
                }
            }
        };
    }
    impl_int_range_strategy!(u8);
    impl_int_range_strategy!(u16);
    impl_int_range_strategy!(u32);
    impl_int_range_strategy!(u64);
    impl_int_range_strategy!(usize);
    impl_int_range_strategy!(i8);
    impl_int_range_strategy!(i16);
    impl_int_range_strategy!(i32);
    impl_int_range_strategy!(i64);
    impl_int_range_strategy!(isize);

    macro_rules! impl_tuple_strategy {
        ($($S:ident $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(S0 0);
    impl_tuple_strategy!(S0 0, S1 1);
    impl_tuple_strategy!(S0 0, S1 1, S2 2);
    impl_tuple_strategy!(S0 0, S1 1, S2 2, S3 3);
    impl_tuple_strategy!(S0 0, S1 1, S2 2, S3 3, S4 4);
    impl_tuple_strategy!(S0 0, S1 1, S2 2, S3 3, S4 4, S5 5);
    impl_tuple_strategy!(S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6);
    impl_tuple_strategy!(S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7);
    impl_tuple_strategy!(S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7, S8 8);
    impl_tuple_strategy!(S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7, S8 8, S9 9);
}

/// `any::<T>()` — full-domain strategies for primitive types.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value from the full domain of `Self`.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`any`].
    #[derive(Clone, Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T` (used as `any::<T>()`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),+) => {
            $(impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            })+
        };
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary_value(rng: &mut TestRng) -> f32 {
            // Finite full-range floats (no NaN/inf — the workspace's numeric
            // code treats those as precondition violations).
            (rng.unit_f64() as f32 - 0.5) * 2.0 * f32::MAX.sqrt()
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with the given element strategy and length bounds.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Test-case execution: configuration, errors, and the runner driving
/// strategies through test closures.
pub mod test_runner {
    use super::strategy::Strategy;
    use super::TestRng;

    /// How many cases to run per property (subset of upstream's config).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the property to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Outcome of a single test case.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The property does not hold for this input.
        Fail(String),
        /// The input does not satisfy a `prop_assume!` precondition.
        Reject,
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected (assumption-violating) case.
        pub fn reject() -> TestCaseError {
            TestCaseError::Reject
        }
    }

    /// Drives a strategy through a test closure for the configured number
    /// of cases.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: TestRng,
    }

    impl TestRunner {
        /// A runner with a fixed seed, so every run of a property explores
        /// the same deterministic sequence of cases.
        pub fn new(config: ProptestConfig) -> TestRunner {
            TestRunner {
                config,
                rng: TestRng::from_seed(0x4D50_4163_6365_6C21), // "MPAccel!"
            }
        }

        /// Runs the property; `Err` carries a human-readable failure report.
        pub fn run<S, F>(&mut self, strategy: &S, mut test: F) -> Result<(), String>
        where
            S: Strategy,
            F: FnMut(S::Value) -> Result<(), TestCaseError>,
        {
            let mut passed: u32 = 0;
            let mut rejected: u64 = 0;
            let max_rejects = 1024 + 64 * self.config.cases as u64;
            while passed < self.config.cases {
                let value = strategy.generate(&mut self.rng);
                match test(value) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject) => {
                        rejected += 1;
                        if rejected > max_rejects {
                            return Err(format!(
                                "prop_assume! rejected {rejected} cases \
                                 (only {passed} passed); assumption too strict"
                            ));
                        }
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        return Err(format!("property failed at case #{passed}: {msg}"));
                    }
                }
            }
            Ok(())
        }
    }
}

/// One-glob import mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. Each function body runs once per generated
/// case; write `#[test]` on the functions as with upstream `proptest`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(config = $config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        );
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                let outcome = runner.run(
                    &($($strategy,)+),
                    |($($parm,)+)| {
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
                if let ::core::result::Result::Err(message) = outcome {
                    panic!("{}", message);
                }
            }
        )*
    };
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
}

/// Rejects the current case when a precondition does not hold; the runner
/// draws a replacement instead of failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($item:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($item)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn parity(n: u64) -> bool {
        n.is_multiple_of(2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in -1.5f32..2.5, n in 3usize..9) {
            prop_assert!((-1.5..2.5).contains(&x));
            prop_assert!((3..9).contains(&n));
        }

        #[test]
        fn map_and_vec_compose(v in prop::collection::vec((0u64..100).prop_map(|n| n * 2), 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            for n in v {
                prop_assert!(parity(n), "doubled value {} not even", n);
            }
        }

        #[test]
        fn oneof_and_assume(pick in prop_oneof![Just(1u32), Just(3), Just(5)], b in any::<bool>()) {
            prop_assume!(b || pick != 5);
            prop_assert!(pick == 1 || pick == 3 || pick == 5);
            prop_assert_ne!(pick, 4);
            prop_assert_eq!(pick % 2, 1);
        }
    }

    #[test]
    fn failing_property_reports_case() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(16));
        let out = runner.run(&(0u64..10,), |(n,)| {
            prop_assert!(n < 9, "hit {}", n);
            Ok(())
        });
        let msg = out.expect_err("property should eventually fail");
        assert!(msg.contains("hit 9"), "unexpected message: {msg}");
    }
}
