//! Offline vendored scoped work-stealing thread pool.
//!
//! The build environment for this repository is hermetic (no crates.io
//! access), so — following the `rand`/`proptest`/`criterion` pattern — the
//! workspace vendors its own minimal parallel-execution primitive instead
//! of depending on `rayon`. The design goals, in order:
//!
//! 1. **Determinism**: [`ThreadPool::map`] always returns results in input
//!    order, and every job receives its input index, so callers can seed
//!    per-item RNGs from the index. Output is therefore bit-identical to a
//!    serial run regardless of thread count or scheduling interleavings.
//! 2. **Scoped borrows**: jobs may borrow from the caller's stack
//!    (implemented on [`std::thread::scope`]), so workloads and scenes need
//!    not be `'static` or wrapped in `Arc`.
//! 3. **Work stealing**: items are dealt round-robin into per-worker
//!    queues; an idle worker steals from the back of the busiest remaining
//!    queue, so skewed item costs (one scene planning far longer than the
//!    rest) do not serialize the batch.
//!
//! Thread count comes from [`ThreadPool::from_env`] (the `MPACCEL_THREADS`
//! environment variable) or an explicit [`ThreadPool::new`]. A pool of one
//! thread runs jobs inline on the caller's thread — no spawning — which is
//! also the fallback wherever spawning is impossible.
//!
//! This is *not* the crates.io `threadpool` API: that crate hands `'static`
//! jobs to long-lived workers, which cannot express the scoped borrows the
//! benchmark engine needs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::Mutex;

/// Environment variable controlling the default pool width.
pub const THREADS_ENV: &str = "MPACCEL_THREADS";

/// A fixed-width scoped thread pool.
///
/// The pool itself is trivially cheap (it owns no threads); workers are
/// spawned per [`ThreadPool::map`] call inside a [`std::thread::scope`], so
/// jobs may borrow local data.
///
/// # Examples
///
/// ```
/// use threadpool::ThreadPool;
///
/// let pool = ThreadPool::new(4);
/// let squares = pool.map(&[1u64, 2, 3, 4, 5], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
#[derive(Clone, Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Creates a pool with exactly `threads` workers (minimum one).
    pub fn new(threads: usize) -> ThreadPool {
        ThreadPool {
            threads: threads.max(1),
        }
    }

    /// Creates a pool sized from `MPACCEL_THREADS`: a positive integer
    /// fixes the width; `0`, unset, or unparsable values fall back to the
    /// machine's available parallelism.
    pub fn from_env() -> ThreadPool {
        ThreadPool::new(Self::threads_from_env())
    }

    /// Resolves the `MPACCEL_THREADS` policy without building a pool.
    pub fn threads_from_env() -> usize {
        match std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            Some(n) if n > 0 => n,
            _ => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }

    /// The number of worker threads `map` will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item, in parallel, returning the results in
    /// input order. `f` receives `(index, &item)` so callers can derive
    /// per-item seeds from the index.
    ///
    /// With one thread (or zero/one items) everything runs inline on the
    /// calling thread; the parallel path is observationally identical as
    /// long as `f` is deterministic per item.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised by any job.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if self.threads == 1 || items.len() <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let workers = self.threads.min(items.len());
        // Deal item indices round-robin into per-worker queues.
        let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| {
                Mutex::new(
                    (w..items.len())
                        .step_by(workers)
                        .collect::<VecDeque<usize>>(),
                )
            })
            .collect();
        let results: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let queues = &queues;
                let results = &results;
                let f = &f;
                handles.push(scope.spawn(move || {
                    loop {
                        // Own queue first (front), then steal from the
                        // longest other queue (back) to keep stolen work
                        // coarse.
                        let next = pop_front(&queues[w]).or_else(|| steal(queues, w));
                        let Some(i) = next else { break };
                        let r = f(i, &items[i]);
                        let mut guard = results.lock().expect("result vector poisoned");
                        guard[i] = Some(r);
                    }
                }));
            }
            for h in handles {
                // Propagate worker panics to the caller (join returns Err
                // only on panic).
                if let Err(payload) = h.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });

        results
            .into_inner()
            .expect("result vector poisoned")
            .into_iter()
            .map(|r| r.expect("every index executed exactly once"))
            .collect()
    }

    /// Runs independent closures in parallel, returning their results in
    /// input order. Convenience wrapper over [`ThreadPool::map`] for
    /// heterogeneous jobs behind a common signature.
    pub fn run<R, F>(&self, jobs: Vec<F>) -> Vec<R>
    where
        R: Send,
        F: Fn() -> R + Sync,
    {
        self.map(&jobs, |_, job| job())
    }
}

impl Default for ThreadPool {
    /// [`ThreadPool::from_env`].
    fn default() -> ThreadPool {
        ThreadPool::from_env()
    }
}

fn pop_front(queue: &Mutex<VecDeque<usize>>) -> Option<usize> {
    queue.lock().expect("work queue poisoned").pop_front()
}

/// Steals one item from the back of the longest queue other than `own`.
fn steal(queues: &[Mutex<VecDeque<usize>>], own: usize) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None; // (len, queue index)
    for (qi, q) in queues.iter().enumerate() {
        if qi == own {
            continue;
        }
        let len = q.lock().expect("work queue poisoned").len();
        if len > best.map_or(0, |(l, _)| l) {
            best = Some((len, qi));
        }
    }
    let (_, qi) = best?;
    queues[qi].lock().expect("work queue poisoned").pop_back()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_input_order() {
        let pool = ThreadPool::new(4);
        let items: Vec<usize> = (0..100).collect();
        let out = pool.map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_runs_inline() {
        let pool = ThreadPool::new(1);
        let caller = std::thread::current().id();
        let ids = pool.map(&[(), (), ()], |_, ()| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(ThreadPool::new(0).threads(), 1);
    }

    #[test]
    fn skewed_loads_are_stolen() {
        // One expensive item dealt to worker 0; the rest are cheap. With
        // stealing, total wall time stays near the expensive item's cost.
        let pool = ThreadPool::new(4);
        let items: Vec<u64> = (0..32).collect();
        let executed = AtomicUsize::new(0);
        let out = pool.map(&items, |_, &x| {
            executed.fetch_add(1, Ordering::Relaxed);
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x + 1
        });
        assert_eq!(executed.load(Ordering::Relaxed), items.len());
        assert_eq!(out, (1..=32).collect::<Vec<u64>>());
    }

    #[test]
    fn parallel_equals_serial() {
        let items: Vec<u64> = (0..257).collect();
        let f = |i: usize, x: &u64| {
            // Deterministic per-item pseudo-work seeded by index.
            let mut acc = *x ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
            for _ in 0..100 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        };
        let serial = ThreadPool::new(1).map(&items, f);
        for threads in [2, 3, 4, 8] {
            assert_eq!(ThreadPool::new(threads).map(&items, f), serial);
        }
    }

    #[test]
    fn run_collects_closure_results_in_order() {
        let pool = ThreadPool::new(3);
        let jobs: Vec<Box<dyn Fn() -> usize + Sync>> =
            vec![Box::new(|| 10), Box::new(|| 20), Box::new(|| 30)];
        assert_eq!(pool.run(jobs), vec![10, 20, 30]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let pool = ThreadPool::new(8);
        assert_eq!(pool.map(&[] as &[u8], |_, &x| x), Vec::<u8>::new());
        assert_eq!(pool.map(&[7u8], |_, &x| x), vec![7]);
    }

    #[test]
    #[should_panic(expected = "job failed")]
    fn worker_panics_propagate() {
        let pool = ThreadPool::new(2);
        let _ = pool.map(&[0u8, 1, 2, 3], |_, &x| {
            if x == 2 {
                panic!("job failed");
            }
            x
        });
    }

    #[test]
    fn env_parsing_policies() {
        // NOTE: mutating the environment is process-global; this is the
        // only test in the crate that does so.
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(ThreadPool::threads_from_env(), 3);
        std::env::set_var(THREADS_ENV, "0");
        assert!(ThreadPool::threads_from_env() >= 1);
        std::env::set_var(THREADS_ENV, "not-a-number");
        assert!(ThreadPool::threads_from_env() >= 1);
        std::env::remove_var(THREADS_ENV);
        assert!(ThreadPool::threads_from_env() >= 1);
    }
}
