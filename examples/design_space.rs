//! Design-space exploration: sweep MPAccel configurations (CECDU count,
//! OOCDs per CECDU, intersection-unit style, scheduler policy) on one
//! workload and print latency, area, power and the Fig 20 efficiency
//! metric — the study a deployment team would run to size the accelerator
//! for their robot.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use mpaccel::accel::mpaccel::{MpAccelSystem, SystemConfig};
use mpaccel::accel::sas::SasConfig;
use mpaccel::collision::SoftwareChecker;
use mpaccel::octree::{Scene, SceneConfig};
use mpaccel::planner::batch::mpnet_stream;
use mpaccel::planner::mpnet::MpnetConfig;
use mpaccel::planner::queries::generate_queries;
use mpaccel::planner::sampler::OracleSampler;
use mpaccel::robot::RobotModel;
use mpaccel::sim::{CecduConfig, IuKind, MpaccelConfig};

fn main() {
    let robot = RobotModel::baxter();
    let scene = Scene::random(SceneConfig::paper(), 5);
    let octree = scene.octree();

    // A representative multi-query workload, planned through the batch
    // engine (one shared checker for the scene) — the traces of every
    // solved query are replayed on each candidate configuration.
    let queries = generate_queries(&robot, &scene, 3, 3).expect("query generation");
    let mut checker = SoftwareChecker::new(robot.clone(), octree.clone());
    let lanes: Vec<_> = queries
        .iter()
        .map(|q| (q.start.clone(), q.goal.clone(), MpnetConfig::default()))
        .collect();
    let outs: Vec<_> = mpnet_stream(&mut checker, &lanes, |_| {
        OracleSampler::new(robot.clone(), 9)
    })
    .into_iter()
    .filter(|r| r.outcome.solved())
    .map(|r| r.outcome)
    .collect();
    if outs.is_empty() {
        println!("no workload query solved; rerun with another seed");
        return;
    }
    println!(
        "workload: {} solved Baxter queries, {} CD batches total\n",
        outs.len(),
        outs.iter().map(|o| o.trace.cd_batches()).sum::<usize>()
    );

    println!("config     scheduler  latency(ms)  area(mm2)  power(W)  q/(s*W*mm2)");
    for cecdus in [4usize, 8, 16, 32] {
        for oocds in [1usize, 4] {
            for iu in [IuKind::MultiCycle, IuKind::Pipelined] {
                let accel = MpaccelConfig::new(cecdus, CecduConfig::new(oocds, iu));
                let sys = MpAccelSystem::new(
                    robot.clone(),
                    octree.clone(),
                    SystemConfig::with_accel(accel),
                );
                let (mut total_ms, mut _cd) = (0.0, 0u64);
                for o in &outs {
                    let r = sys.run_trace(&o.trace);
                    total_ms += r.total_ms;
                    _cd += r.cd_queries;
                }
                let report_total_ms = total_ms;
                let ap = accel.area_power();
                let perf = accel.perf_metric(outs.len() as u64, report_total_ms / 1e3);
                println!(
                    "{:<9}  MCSP       {:>11.3}  {:>9.2}  {:>8.2}  {:>11.1}",
                    accel.label(),
                    report_total_ms,
                    ap.area_mm2,
                    ap.power_w,
                    perf
                );
            }
        }
    }

    // Scheduler ablation on the headline hardware.
    println!("\nscheduler ablation on 16_4_mc:");
    for (name, sas) in [
        ("sequential", SasConfig::sequential()),
        ("naive (NP)", SasConfig::naive_parallel(16)),
        ("CSP", SasConfig::csp(16)),
        ("MP", SasConfig::inter_only(16)),
        ("MCSP", SasConfig::mcsp(16)),
    ] {
        let sys = MpAccelSystem::new(robot.clone(), octree.clone(), SystemConfig::paper_default())
            .with_scheduler(sas);
        let (mut ms, mut cd) = (0.0, 0u64);
        for o in &outs {
            let r = sys.run_trace(&o.trace);
            ms += r.total_ms;
            cd += r.cd_queries;
        }
        println!("  {:<11} {:>8.3} ms   {:>7} CD queries", name, ms, cd);
    }
}
