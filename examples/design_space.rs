//! Design-space exploration: sweep MPAccel configurations (CECDU count,
//! OOCDs per CECDU, intersection-unit style, scheduler policy) on one
//! workload and print latency, area, power and the Fig 20 efficiency
//! metric — the study a deployment team would run to size the accelerator
//! for their robot.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use mpaccel::accel::mpaccel::{MpAccelSystem, SystemConfig};
use mpaccel::accel::sas::SasConfig;
use mpaccel::collision::SoftwareChecker;
use mpaccel::octree::{Scene, SceneConfig};
use mpaccel::planner::mpnet::{plan, MpnetConfig};
use mpaccel::planner::queries::generate_queries;
use mpaccel::planner::sampler::OracleSampler;
use mpaccel::robot::RobotModel;
use mpaccel::sim::{CecduConfig, IuKind, MpaccelConfig};

fn main() {
    let robot = RobotModel::baxter();
    let scene = Scene::random(SceneConfig::paper(), 5);
    let octree = scene.octree();

    // One representative planning trace to replay on every configuration.
    let query = generate_queries(&robot, &scene, 1, 3).expect("query generation")[0].clone();
    let mut checker = SoftwareChecker::new(robot.clone(), octree.clone());
    let mut sampler = OracleSampler::new(robot.clone(), 9);
    let out = plan(
        &mut checker,
        &mut sampler,
        &query.start,
        &query.goal,
        &MpnetConfig::default(),
    );
    let Some(_) = &out.path else {
        println!("workload query unsolved; rerun with another seed");
        return;
    };
    println!(
        "workload: one Baxter query, {} CD batches, <= {} poses\n",
        out.trace.cd_batches(),
        out.trace.max_cd_poses()
    );

    println!("config     scheduler  latency(ms)  area(mm2)  power(W)  q/(s*W*mm2)");
    for cecdus in [4usize, 8, 16, 32] {
        for oocds in [1usize, 4] {
            for iu in [IuKind::MultiCycle, IuKind::Pipelined] {
                let accel = MpaccelConfig::new(cecdus, CecduConfig::new(oocds, iu));
                let sys = MpAccelSystem::new(
                    robot.clone(),
                    octree.clone(),
                    SystemConfig::with_accel(accel),
                );
                let report = sys.run_trace(&out.trace);
                let ap = accel.area_power();
                let perf = accel.perf_metric(1, report.total_ms / 1e3);
                println!(
                    "{:<9}  MCSP       {:>11.3}  {:>9.2}  {:>8.2}  {:>11.1}",
                    accel.label(),
                    report.total_ms,
                    ap.area_mm2,
                    ap.power_w,
                    perf
                );
            }
        }
    }

    // Scheduler ablation on the headline hardware.
    println!("\nscheduler ablation on 16_4_mc:");
    for (name, sas) in [
        ("sequential", SasConfig::sequential()),
        ("naive (NP)", SasConfig::naive_parallel(16)),
        ("CSP", SasConfig::csp(16)),
        ("MP", SasConfig::inter_only(16)),
        ("MCSP", SasConfig::mcsp(16)),
    ] {
        let sys = MpAccelSystem::new(robot.clone(), octree.clone(), SystemConfig::paper_default())
            .with_scheduler(sas);
        let report = sys.run_trace(&out.trace);
        println!(
            "  {:<11} {:>8.3} ms   {:>7} CD queries",
            name, report.total_ms, report.cd_queries
        );
    }
}
