//! Quickstart: plan a motion for a 7-DOF Baxter arm and replay it on the
//! MPAccel accelerator model.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mpaccel::accel::mpaccel::{MpAccelSystem, SystemConfig};
use mpaccel::collision::{CollisionChecker, SoftwareChecker};
use mpaccel::octree::{Scene, SceneConfig};
use mpaccel::planner::mpnet::{plan, MpnetConfig};
use mpaccel::planner::queries::generate_queries;
use mpaccel::planner::sampler::OracleSampler;
use mpaccel::robot::RobotModel;

fn main() {
    // 1. A randomized benchmark environment (5-9 cuboid obstacles, §6).
    let scene = Scene::random(SceneConfig::paper(), 42);
    let octree = scene.octree();
    println!(
        "environment: {} obstacles, octree {} nodes ({} bytes on-chip)",
        scene.obstacles().len(),
        octree.node_count(),
        octree.storage_bytes()
    );

    // 2. The robot and a planning query.
    let robot = RobotModel::baxter();
    let query = generate_queries(&robot, &scene, 1, 7).expect("query generation")[0].clone();
    println!(
        "robot: {} ({} DOF, {} links); query distance {:.2} rad",
        robot.name(),
        robot.dof(),
        robot.link_count(),
        query.start.distance(&query.goal)
    );

    // 3. Plan with the MPNet-style neural planner (software oracle CD).
    // The planner is stochastic; retry a few seeds like a deployment would.
    let mut checker = SoftwareChecker::new(robot.clone(), octree.clone());
    let out = (0..10)
        .map(|seed| {
            let mut sampler = OracleSampler::new(robot.clone(), seed);
            let cfg = MpnetConfig {
                seed,
                ..MpnetConfig::default()
            };
            plan(&mut checker, &mut sampler, &query.start, &query.goal, &cfg)
        })
        .find(|out| out.solved());
    let Some(out) = out else {
        println!("planner failed on every seed — the query may be infeasible");
        return;
    };
    let path = out.path.as_ref().expect("solved");
    println!(
        "plan: {} waypoints, C-space length {:.2} rad, {} CD pose queries, {} NN inferences",
        path.len(),
        out.path_length().unwrap(),
        out.stats.cd_queries,
        out.stats.nn_calls
    );

    // 4. Replay the recorded trace on the MPAccel hardware model.
    let sys = MpAccelSystem::new(robot, octree, SystemConfig::paper_default());
    let report = sys.run_trace(&out.trace);
    println!(
        "MPAccel (16 CECDUs x 4 multi-cycle OOCDs @ {:.0} MHz):",
        1e3 * mpaccel::sim::ClockDomain::multi_cycle().frequency_ghz()
    );
    println!(
        "  total {:.3} ms  (CD {:.3} ms, NN {:.3} ms, controller {:.3} ms, bus {:.3} ms)",
        report.total_ms, report.cd_ms, report.nn_ms, report.controller_ms, report.bus_ms
    );
    println!(
        "  {} CD queries in {} cycles; accelerator energy {:.3} mJ",
        report.cd_queries, report.cd_cycles, report.accel_energy_mj
    );
    println!(
        "  real-time budget (1 ms): {}",
        if report.total_ms < 1.0 {
            "MET"
        } else {
            "MISSED"
        }
    );
    let _ = checker.stats();
}
