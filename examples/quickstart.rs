//! Quickstart: plan a block of motions for a 7-DOF Baxter arm through the
//! cross-query batch engine, then replay one plan on the MPAccel
//! accelerator model.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mpaccel::accel::mpaccel::{MpAccelSystem, SystemConfig};
use mpaccel::collision::SoftwareChecker;
use mpaccel::octree::{Scene, SceneConfig};
use mpaccel::planner::batch::mpnet_stream;
use mpaccel::planner::mpnet::MpnetConfig;
use mpaccel::planner::queries::generate_queries;
use mpaccel::planner::sampler::OracleSampler;
use mpaccel::robot::RobotModel;

fn main() {
    // 1. A randomized benchmark environment (5-9 cuboid obstacles, §6).
    let scene = Scene::random(SceneConfig::paper(), 42);
    let octree = scene.octree();
    println!(
        "environment: {} obstacles, octree {} nodes ({} bytes on-chip)",
        scene.obstacles().len(),
        octree.node_count(),
        octree.storage_bytes()
    );

    // 2. The robot and a block of planning queries for this scene.
    let robot = RobotModel::baxter();
    let queries = generate_queries(&robot, &scene, 4, 7).expect("query generation");
    println!(
        "robot: {} ({} DOF, {} links); {} queries in this scene",
        robot.name(),
        robot.dof(),
        robot.link_count(),
        queries.len()
    );

    // 3. Plan the whole block with the MPNet-style neural planner through
    // one shared checker — the batch engine amortizes the octree and FK
    // state across queries, and each lane's outcome is bit-identical to
    // planning it alone with a fresh checker.
    let mut checker = SoftwareChecker::new(robot.clone(), octree.clone());
    let lanes: Vec<_> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            let cfg = MpnetConfig {
                seed: i as u64,
                ..MpnetConfig::default()
            };
            (q.start.clone(), q.goal.clone(), cfg)
        })
        .collect();
    let results = mpnet_stream(&mut checker, &lanes, |i| {
        OracleSampler::new(robot.clone(), i as u64)
    });
    for (i, r) in results.iter().enumerate() {
        match &r.outcome.path {
            Some(path) => println!(
                "  query {i}: {} waypoints, {:.2} rad, {} CD pose queries, {} NN inferences",
                path.len(),
                r.outcome.path_length().unwrap(),
                r.stats.pose_queries,
                r.outcome.stats.nn_calls
            ),
            None => println!("  query {i}: unsolved (may be infeasible at this seed)"),
        }
    }

    // 4. Replay one recorded trace on the MPAccel hardware model.
    let Some(out) = results.iter().map(|r| &r.outcome).find(|o| o.solved()) else {
        println!("no query solved — rerun with another scene seed");
        return;
    };
    let sys = MpAccelSystem::new(robot, octree, SystemConfig::paper_default());
    let report = sys.run_trace(&out.trace);
    println!(
        "MPAccel (16 CECDUs x 4 multi-cycle OOCDs @ {:.0} MHz):",
        1e3 * mpaccel::sim::ClockDomain::multi_cycle().frequency_ghz()
    );
    println!(
        "  total {:.3} ms  (CD {:.3} ms, NN {:.3} ms, controller {:.3} ms, bus {:.3} ms)",
        report.total_ms, report.cd_ms, report.nn_ms, report.controller_ms, report.bus_ms
    );
    println!(
        "  {} CD queries in {} cycles; accelerator energy {:.3} mJ",
        report.cd_queries, report.cd_cycles, report.accel_energy_mj
    );
    println!(
        "  real-time budget (1 ms): {}",
        if report.total_ms < 1.0 {
            "MET"
        } else {
            "MISSED"
        }
    );
}
