//! Dynamic replanning: an obstacle sweeps through the Baxter arm's
//! workspace and the robot reacts every control tick, as the paper's
//! motivating scenario ("robots need to react to moving objects in their
//! environment") requires. The environment octree is rebuilt on every tick
//! — the streaming-update path of Fig 11, step 1.
//!
//! Each tick first *revalidates* the remaining plan against the updated
//! world as one rake-style motion stream ([`RakeValidator`]); the planner
//! runs only when the sweep actually invalidates the plan, which is how a
//! deployed controller keeps most ticks at pure validation cost.
//!
//! ```text
//! cargo run --release --example dynamic_replanning
//! ```

use mpaccel::accel::mpaccel::{MpAccelSystem, SystemConfig};
use mpaccel::collision::{RakeValidator, SoftwareChecker};
use mpaccel::geometry::{Aabb, Vec3};
use mpaccel::octree::{Octree, Scene, SceneConfig};
use mpaccel::planner::mpnet::{plan, MpnetConfig};
use mpaccel::planner::queries::generate_queries;
use mpaccel::planner::sampler::OracleSampler;
use mpaccel::robot::{JointConfig, Motion, RobotModel};

/// Rake-validates the remaining waypoints against the tick's octree.
fn plan_still_valid(
    checker: &mut SoftwareChecker,
    rake: &mut RakeValidator,
    path: &[JointConfig],
) -> bool {
    path.windows(2).all(|w| {
        let edge = Motion::new(w[0].clone(), w[1].clone());
        !rake.check_motion(checker, &edge, 0.04).colliding
    })
}

fn main() {
    let robot = RobotModel::baxter();
    let base_scene = Scene::random(SceneConfig::paper(), 3);
    let query = generate_queries(&robot, &base_scene, 1, 11).expect("query generation")[0].clone();

    println!("dynamic environment: static clutter + one moving obstacle\n");
    println!("tick  obstacle.y  action    solved  waypoints  MPAccel (ms)  budget");

    let ticks = 8;
    let mut current = query.start.clone();
    let mut remaining: Vec<JointConfig> = Vec::new();
    let mut rake = RakeValidator::new();
    for tick in 0..ticks {
        // The intruding obstacle slides across the workspace in y.
        let y = -0.8 + 1.6 * tick as f32 / (ticks - 1) as f32;
        let mut obstacles = base_scene.obstacles().to_vec();
        obstacles.push(Aabb::new(Vec3::new(0.55, y, 0.25), Vec3::splat(0.09)));
        let octree = Octree::build(&obstacles, 4);
        let mut checker = SoftwareChecker::new(robot.clone(), octree.clone());

        // Revalidate what's left of the previous plan under the moved
        // obstacle; skip the planner when the rake stream stays clear.
        if remaining.len() > 1 && plan_still_valid(&mut checker, &mut rake, &remaining) {
            println!(
                "{tick:>4}  {y:>10.2}  keep      yes     {:>9}  {:>12}  -",
                remaining.len(),
                "-"
            );
            remaining.remove(0);
            current = remaining[0].clone();
            continue;
        }

        let mut sys =
            MpAccelSystem::new(robot.clone(), octree.clone(), SystemConfig::paper_default());
        sys.set_octree(octree);
        let mut sampler = OracleSampler::new(robot.clone(), 500 + tick as u64);
        let cfg = MpnetConfig {
            seed: tick as u64,
            ..MpnetConfig::default()
        };
        let out = plan(&mut checker, &mut sampler, &current, &query.goal, &cfg);
        match &out.path {
            Some(path) => {
                let report = sys.run_trace(&out.trace);
                println!(
                    "{tick:>4}  {y:>10.2}  replan    yes     {:>9}  {:>12.3}  {}",
                    path.len(),
                    report.total_ms,
                    if report.total_ms < 1.0 {
                        "met"
                    } else {
                        "MISSED"
                    }
                );
                // Advance one waypoint along the plan, as a controller would.
                remaining = path.clone();
                if remaining.len() > 1 {
                    remaining.remove(0);
                    current = remaining[0].clone();
                }
            }
            None => {
                remaining.clear();
                println!(
                    "{tick:>4}  {y:>10.2}  replan    no      {:>9}  {:>12}  -",
                    "-", "-"
                );
            }
        }
    }
    println!(
        "\nreached goal region: {}",
        current.distance(&query.goal) < 1.5
    );
}
