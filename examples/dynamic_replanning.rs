//! Dynamic replanning: an obstacle sweeps through the Baxter arm's
//! workspace and the robot replans every control tick, as the paper's
//! motivating scenario ("robots need to react to moving objects in their
//! environment") requires. The environment octree is rebuilt on every tick
//! — the streaming-update path of Fig 11, step 1.
//!
//! ```text
//! cargo run --release --example dynamic_replanning
//! ```

use mpaccel::accel::mpaccel::{MpAccelSystem, SystemConfig};
use mpaccel::collision::SoftwareChecker;
use mpaccel::geometry::{Aabb, Vec3};
use mpaccel::octree::{Octree, Scene, SceneConfig};
use mpaccel::planner::mpnet::{plan, MpnetConfig};
use mpaccel::planner::queries::generate_queries;
use mpaccel::planner::sampler::OracleSampler;
use mpaccel::robot::RobotModel;

fn main() {
    let robot = RobotModel::baxter();
    let base_scene = Scene::random(SceneConfig::paper(), 3);
    let query = generate_queries(&robot, &base_scene, 1, 11).expect("query generation")[0].clone();

    println!("dynamic environment: static clutter + one moving obstacle\n");
    println!("tick  obstacle.y  solved  waypoints  MPAccel (ms)  budget");

    let ticks = 8;
    let mut current = query.start.clone();
    for tick in 0..ticks {
        // The intruding obstacle slides across the workspace in y.
        let y = -0.8 + 1.6 * tick as f32 / (ticks - 1) as f32;
        let mut obstacles = base_scene.obstacles().to_vec();
        obstacles.push(Aabb::new(Vec3::new(0.55, y, 0.25), Vec3::splat(0.09)));
        let octree = Octree::build(&obstacles, 4);

        let mut sys =
            MpAccelSystem::new(robot.clone(), octree.clone(), SystemConfig::paper_default());
        sys.set_octree(octree.clone());

        let mut checker = SoftwareChecker::new(robot.clone(), octree);
        let mut sampler = OracleSampler::new(robot.clone(), 500 + tick as u64);
        let cfg = MpnetConfig {
            seed: tick as u64,
            ..MpnetConfig::default()
        };
        let out = plan(&mut checker, &mut sampler, &current, &query.goal, &cfg);
        match &out.path {
            Some(path) => {
                let report = sys.run_trace(&out.trace);
                println!(
                    "{tick:>4}  {y:>10.2}  yes     {:>9}  {:>12.3}  {}",
                    path.len(),
                    report.total_ms,
                    if report.total_ms < 1.0 {
                        "met"
                    } else {
                        "MISSED"
                    }
                );
                // Advance one waypoint along the plan, as a controller would.
                if path.len() > 1 {
                    current = path[1].clone();
                }
            }
            None => {
                println!("{tick:>4}  {y:>10.2}  no      {:>9}  {:>12}  -", "-", "-");
            }
        }
    }
    println!(
        "\nreached goal region: {}",
        current.distance(&query.goal) < 1.5
    );
}
