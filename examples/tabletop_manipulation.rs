//! Tabletop manipulation: a Jaco2 arm (the assistive manipulator of
//! Fig 1a) reaches a sequence of goals over a cluttered table while the
//! accelerator keeps every replan inside the real-time budget.
//!
//! ```text
//! cargo run --release --example tabletop_manipulation
//! ```

use mpaccel::accel::mpaccel::{MpAccelSystem, SystemConfig};
use mpaccel::collision::{RakeValidator, SoftwareChecker};
use mpaccel::geometry::{Aabb, Vec3};
use mpaccel::octree::Scene;
use mpaccel::planner::batch::mpnet_stream;
use mpaccel::planner::mpnet::MpnetConfig;
use mpaccel::planner::sampler::OracleSampler;
use mpaccel::robot::{JointConfig, Motion, RobotModel};

/// A table surface plus items standing on it, hand-placed in normalized
/// workspace coordinates (the environment cube is `[-1, 1]³`).
fn tabletop_scene() -> Scene {
    let mut obstacles = vec![
        // The table: a thin slab in front of the robot, below z = -0.1.
        Aabb::new(Vec3::new(0.55, 0.0, -0.2), Vec3::new(0.3, 0.5, 0.04)),
    ];
    // Items on the table.
    for (x, y, h) in [
        (0.45f32, -0.3f32, 0.10f32),
        (0.6, 0.0, 0.16),
        (0.5, 0.3, 0.08),
    ] {
        obstacles.push(Aabb::new(
            Vec3::new(x, y, -0.16 + h),
            Vec3::new(0.05, 0.05, h),
        ));
    }
    Scene::from_obstacles(obstacles, 5)
}

fn main() {
    let scene = tabletop_scene();
    let octree = scene.octree();
    let robot = RobotModel::jaco2();
    println!(
        "tabletop scene: {} obstacles, octree {} nodes (fits 8-bit addressing: {})",
        scene.obstacles().len(),
        octree.node_count(),
        octree.fits_hardware()
    );

    // A pick-and-place style goal sequence in joint space: over the table,
    // reach down between items, retract, swing to the other side.
    let goals = [
        vec![0.5, 1.2, -0.6, 0.0, 0.0, 0.0],
        vec![0.2, 1.5, -1.1, 0.3, 0.4, 0.0],
        vec![-0.4, 1.2, -0.6, 0.0, 0.0, 0.0],
        vec![-0.8, 1.6, -1.2, 0.2, -0.3, 0.5],
    ];

    // One shared checker serves the whole task: each segment streams
    // through it via the batch engine (outcomes are bit-identical to a
    // fresh checker per segment, but the octree and FK state stay hot),
    // and the final certification sweep reuses it too.
    let sys = MpAccelSystem::new(robot.clone(), octree.clone(), SystemConfig::paper_default());
    let mut checker = SoftwareChecker::new(robot.clone(), octree.clone());
    let mut current = robot.home();
    let mut total_ms = 0.0;
    let mut failures = 0;
    let mut trajectory: Vec<JointConfig> = vec![current.clone()];
    for (i, g) in goals.iter().enumerate() {
        let goal = robot.clamp_config(&JointConfig::new(g.clone()));
        let cfg = MpnetConfig {
            seed: i as u64,
            ..MpnetConfig::default()
        };
        // Segment i+1 starts where segment i ended, so segments stream
        // one lane at a time through the shared checker.
        let lane = [(current.clone(), goal.clone(), cfg)];
        let out = mpnet_stream(&mut checker, &lane, |_| {
            OracleSampler::new(robot.clone(), 100 + i as u64)
        })
        .pop()
        .expect("one lane in, one lane out")
        .outcome;
        match &out.path {
            Some(path) => {
                let report = sys.run_trace(&out.trace);
                total_ms += report.total_ms;
                println!(
                    "segment {i}: {} waypoints, {:.2} rad, MPAccel {:.3} ms ({} CD queries) {}",
                    path.len(),
                    out.path_length().unwrap(),
                    report.total_ms,
                    report.cd_queries,
                    if report.total_ms < 1.0 {
                        "[real-time]"
                    } else {
                        "[over budget]"
                    }
                );
                trajectory.extend(path.iter().skip(1).cloned());
                current = goal;
            }
            None => {
                failures += 1;
                println!("segment {i}: planning failed (goal may be in collision)");
            }
        }
    }
    println!(
        "\nsequence complete: {}/{} segments planned, cumulative accelerator time {:.3} ms",
        goals.len() - failures,
        goals.len(),
        total_ms
    );

    // Certify the stitched trajectory end-to-end as one rake stream
    // through the still-hot checker before handing it to the controller.
    if trajectory.len() > 1 {
        let mut rake = RakeValidator::new();
        let clear = trajectory.windows(2).all(|w| {
            let edge = Motion::new(w[0].clone(), w[1].clone());
            !rake.check_motion(&mut checker, &edge, 0.04).colliding
        });
        println!(
            "final certification over {} waypoints: {}",
            trajectory.len(),
            if clear { "PASS" } else { "FAIL" }
        );
    }
}
