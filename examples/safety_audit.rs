//! Safety audit: validate a planned trajectory against *both* hazards a
//! deployed arm faces — environment collisions (the paper's scope, via the
//! accelerator's collision pipeline) and self-collisions (this
//! reproduction's extension) — and report clearance statistics.
//!
//! ```text
//! cargo run --release --example safety_audit
//! ```

use mpaccel::collision::self_collision::SelfCollisionMatrix;
use mpaccel::collision::{check_path, SoftwareChecker};
use mpaccel::octree::{Scene, SceneConfig};
use mpaccel::planner::batch::mpnet_stream;
use mpaccel::planner::mpnet::MpnetConfig;
use mpaccel::planner::queries::generate_queries;
use mpaccel::planner::sampler::OracleSampler;
use mpaccel::robot::{Motion, RobotModel};

fn main() {
    let robot = RobotModel::baxter();
    let scene = Scene::random(SceneConfig::paper(), 21);
    let octree = scene.octree();
    let query = generate_queries(&robot, &scene, 1, 5).expect("query generation")[0].clone();

    // Plan: the planner is stochastic, so stream several seed attempts as
    // lanes through one shared checker and keep the first that solves.
    // Each lane is bit-identical to a fresh-checker run on its seed, so
    // this picks exactly the plan a sequential retry loop would.
    let mut checker = SoftwareChecker::new(robot.clone(), octree.clone());
    let attempts: Vec<_> = (0..6)
        .map(|seed| {
            let cfg = MpnetConfig {
                seed,
                ..MpnetConfig::default()
            };
            (query.start.clone(), query.goal.clone(), cfg)
        })
        .collect();
    let out = mpnet_stream(&mut checker, &attempts, |i| {
        OracleSampler::new(robot.clone(), i as u64)
    })
    .into_iter()
    .map(|r| r.outcome)
    .find(|o| o.solved());
    let Some(out) = out else {
        println!("no plan found for this query; rerun with another scene seed");
        return;
    };
    let path = out.path.as_ref().expect("solved");
    println!(
        "plan: {} waypoints, {:.2} rad; auditing against {} obstacles…\n",
        path.len(),
        out.path_length().unwrap(),
        scene.obstacles().len()
    );

    // 1. Environment audit: independent re-check of every segment.
    let mut verifier = SoftwareChecker::new(robot.clone(), octree.clone());
    match check_path(&mut verifier, path, 0.02) {
        None => println!("environment audit: PASS (every segment re-verified at 0.02 rad)"),
        Some(i) => println!("environment audit: FAIL at segment {i}"),
    }

    // 2. Self-collision audit along the densified trajectory.
    let matrix = SelfCollisionMatrix::standard(&robot);
    println!(
        "self-collision audit: {} link pairs checked per pose",
        matrix.pairs().len()
    );
    let mut worst: Option<(usize, (usize, usize))> = None;
    let mut poses_checked = 0;
    for (si, w) in path.windows(2).enumerate() {
        let m = Motion::new(w[0].clone(), w[1].clone());
        for pose in m.discretize(0.05) {
            poses_checked += 1;
            if let Some(pair) = matrix.first_colliding_pair(&robot, &pose) {
                worst.get_or_insert((si, pair));
            }
        }
    }
    match worst {
        None => println!("self-collision audit: PASS over {poses_checked} poses"),
        Some((seg, (i, j))) => {
            println!("self-collision audit: FAIL — links {i} and {j} touch in segment {seg}")
        }
    }

    // 3. Clearance profile: distance from each link to the nearest obstacle
    // at the path waypoints (how much margin the plan keeps).
    println!("\nclearance per waypoint (min over links, normalized units):");
    for (k, wp) in path.iter().enumerate() {
        let obbs = mpaccel::robot::fk::link_obbs(&robot, wp, mpaccel::robot::TrigMode::Exact);
        let mut min_d = f32::INFINITY;
        for obb in &obbs {
            for obs in scene.obstacles() {
                let d = (obs.closest_point(obb.center) - obb.center).length() - obb.bounding_radius;
                min_d = min_d.min(d.max(0.0));
            }
        }
        let bars = "#".repeat(((min_d * 40.0) as usize).min(40));
        println!("  wp {k:>2}: {min_d:>6.3}  {bars}");
    }
}
